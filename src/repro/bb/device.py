"""The simulated node-local burst-buffer device.

Models the three properties the tier's robustness story depends on:

- **bandwidth** — appends and reads charge simulated time through one
  FCFS :class:`~repro.sim.resources.Resource` (a single NVMe pipe), so
  absorbing a checkpoint costs ``nbytes / write_bandwidth`` seconds
  instead of the PFS round trip;
- **capacity** — the tier consults :attr:`used_bytes` before absorbing
  and walks its degradation ladder when the device is full;
- **persistence** — the device object survives a simulated node crash
  (NVMe keeps its bits); :meth:`crash` applies the same seeded
  torn-write cut as :class:`~repro.fault.env.FaultyEnv` — every blob
  keeps its synced prefix plus a ``U[0, unsynced]`` slice of the dirty
  tail.  With ``persistent=False`` the device models a DRAM tier and a
  crash loses everything.

The device knows nothing about segments or the journal — it is a flat
blob namespace with durability bookkeeping.  Policy lives in
:class:`~repro.bb.tier.BurstBufferTier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import InvalidArgumentError, NotFoundError, StorageIOError
from repro.util.humanize import parse_size


@dataclass
class BurstBufferConfig:
    """Shape of the node-local tier (sizes accept "512M"-style strings)."""

    #: total blob capacity; the tier degrades to write-through beyond it
    capacity: int | str = "1G"
    #: device append bandwidth in bytes/s (0 = don't charge time)
    write_bandwidth: int | str = "8G"
    #: device read bandwidth in bytes/s (0 = don't charge time)
    read_bandwidth: int | str = "12G"
    #: drain copy granularity (one scheduler request per chunk)
    drain_chunk: int | str = "8M"
    #: tier-level retries per segment after the first drain failure
    #: (each attempt still gets the client's own RPC retry budget)
    drain_retries: int = 4
    #: base backoff between drain retries, doubling per attempt (seconds)
    drain_backoff: float = 0.05
    #: cap on DRAIN-class bytes/s at the client (token bucket);
    #: None leaves the scheduler unconfigured, 0 disables throttling
    drain_bandwidth: Optional[float | str] = None
    #: how long an overflowing writer backpressure-waits for the drain
    #: to free space before degrading to write-through (seconds)
    overflow_timeout: float = 1.0
    #: False turns ladder exhaustion into StorageIOError instead of
    #: degraded write-through (for callers that must not bypass the tier)
    degrade_on_overflow: bool = True
    #: NVMe-like (survives node crash) vs DRAM-like (crash loses all)
    persistent: bool = True
    #: seeds the torn-write cut on crash
    seed: int = 0
    #: an existing device to rebuild the tier over after a simulated
    #: restart; filled in by the manager on first use so the same
    #: options object reopens the same (possibly dirty) device
    device: Optional["BurstBufferDevice"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.capacity = parse_size(self.capacity)
        self.write_bandwidth = parse_size(self.write_bandwidth)
        self.read_bandwidth = parse_size(self.read_bandwidth)
        self.drain_chunk = parse_size(self.drain_chunk)
        if self.capacity <= 0:
            raise InvalidArgumentError("burst-buffer capacity must be positive")
        if self.write_bandwidth < 0 or self.read_bandwidth < 0:
            raise InvalidArgumentError("bandwidth must be >= 0")
        if self.drain_chunk <= 0:
            raise InvalidArgumentError("drain_chunk must be positive")
        if self.drain_retries < 0:
            raise InvalidArgumentError("drain_retries must be >= 0")
        if self.drain_backoff < 0:
            raise InvalidArgumentError("drain_backoff must be >= 0")
        if self.overflow_timeout < 0:
            raise InvalidArgumentError("overflow_timeout must be >= 0")
        if self.drain_bandwidth is not None:
            self.drain_bandwidth = float(parse_size(self.drain_bandwidth))
            if self.drain_bandwidth < 0:
                raise InvalidArgumentError("drain_bandwidth must be >= 0")


class _Blob:
    """One device-resident file: chunked contents + durability marks."""

    __slots__ = ("chunks", "length", "synced")

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.length = 0
        self.synced = 0  #: bytes guaranteed to survive a crash

    def snapshot(self) -> bytes:
        if len(self.chunks) == 1:
            return self.chunks[0]
        data = b"".join(self.chunks)
        self.chunks = [data]
        return data


class BurstBufferDevice:
    """A flat blob namespace with simulated NVMe timing and crash model."""

    def __init__(self, engine, config: Optional[BurstBufferConfig] = None,
                 name: str = "bbdev"):
        from repro import sim

        self.engine = engine
        self.config = config or BurstBufferConfig()
        self.name = name
        self.up = True
        self.crashes = 0
        self._blobs: dict[str, _Blob] = {}
        self._used = 0
        self._pipe = sim.Resource(engine, capacity=1, name=f"{name}.pipe")
        self._rng = np.random.default_rng(self.config.seed)

    # -- capacity ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return max(0, self.config.capacity - self._used)

    # -- timing ------------------------------------------------------------

    def _charge(self, nbytes: int, bandwidth: int) -> None:
        """Occupy the device pipe for ``nbytes`` at ``bandwidth``.

        No-op outside a simulated process (recovery during test setup)
        and when the bandwidth is configured as 0.
        """
        if nbytes <= 0 or not bandwidth:
            return
        from repro import sim
        from repro.errors import SimulationError

        try:
            sim.current_process()
        except SimulationError:
            return
        with self._pipe.request():
            sim.sleep(nbytes / bandwidth)

    def _check_up(self) -> None:
        if not self.up:
            raise StorageIOError(f"burst-buffer device {self.name} is down")

    # -- blob I/O ----------------------------------------------------------

    def create(self, path: str) -> None:
        """Create/truncate a blob (no time charge; an MDS-free namespace)."""
        self._check_up()
        old = self._blobs.get(path)
        if old is not None:
            self._used -= old.length
        self._blobs[path] = _Blob()

    def append(self, path: str, data: bytes) -> None:
        self._check_up()
        blob = self._blobs.get(path)
        if blob is None:
            raise NotFoundError(f"no such burst-buffer blob: {path}")
        chunk = bytes(data)
        self._charge(len(chunk), self.config.write_bandwidth)
        blob.chunks.append(chunk)
        blob.length += len(chunk)
        self._used += len(chunk)

    def sync(self, path: str) -> None:
        """Make every appended byte of ``path`` crash-durable."""
        self._check_up()
        blob = self._lookup(path)
        # an fsync drains the device write pipe for this blob's dirty
        # bytes; appends already charged transfer time, so the sync
        # itself is a cheap flush barrier
        blob.synced = blob.length

    def read(self, path: str, offset: int, nbytes: int) -> bytes:
        self._check_up()
        blob = self._lookup(path)
        data = blob.snapshot()[offset : offset + nbytes]
        self._charge(len(data), self.config.read_bandwidth)
        return data

    def _lookup(self, path: str) -> _Blob:
        blob = self._blobs.get(path)
        if blob is None:
            raise NotFoundError(f"no such burst-buffer blob: {path}")
        return blob

    # -- namespace ---------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._blobs

    def size(self, path: str) -> int:
        return self._lookup(path).length

    def synced_size(self, path: str) -> int:
        return self._lookup(path).synced

    def delete(self, path: str) -> None:
        blob = self._blobs.pop(path, None)
        if blob is None:
            raise NotFoundError(f"no such burst-buffer blob: {path}")
        self._used -= blob.length

    def rename(self, src: str, dst: str) -> None:
        blob = self._blobs.pop(src, None)
        if blob is None:
            raise NotFoundError(f"no such burst-buffer blob: {src}")
        old = self._blobs.get(dst)
        if old is not None:
            self._used -= old.length
        self._blobs[dst] = blob

    def paths(self) -> list[str]:
        return sorted(self._blobs)

    # -- faults ------------------------------------------------------------

    def fail(self) -> None:
        """Device failure: every operation raises until :meth:`recover`."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    def crash(self) -> None:
        """Node death: tear every blob's un-synced tail (seeded cut).

        Mirrors :meth:`repro.fault.env.FaultyEnv.crash`: each dirty blob
        keeps ``synced + U[0, unsynced]`` bytes — some dirty device
        writes made it, the rest are gone.  A non-persistent (DRAM)
        device loses everything.  The device itself stays usable: the
        *node* died, not the drive.
        """
        self.crashes += 1
        if not self.config.persistent:
            self._blobs.clear()
            self._used = 0
            return
        for path in sorted(self._blobs):
            blob = self._blobs[path]
            unsynced = blob.length - blob.synced
            if unsynced <= 0:
                continue
            keep = blob.synced + int(self._rng.integers(0, unsynced + 1))
            data = blob.snapshot()[:keep]
            self._used -= blob.length - len(data)
            blob.chunks = [data]
            blob.length = len(data)
            blob.synced = len(data)
