"""The crash-consistent drain journal.

An append-only log of segment lifecycle records stored *on the burst
buffer device itself* (the journal must not depend on the PFS it is
protecting).  Record framing follows the WAL idiom::

    [fixed32 payload length][fixed32 masked CRC-32C(payload)][payload]

    payload := op:u8  fields...
      SEAL   path  size:fixed64  crc:fixed32   -- segment durable in BB
      COMMIT path  size:fixed64  crc:fixed32   -- PFS copy durable too
      DELETE path                              -- segment dropped
      RENAME src dst                           -- namespace move
      (path/src/dst are varint32-length-prefixed UTF-8)

Replay (:meth:`DrainJournal.replay`) scans records in order and stops at
the first torn or CRC-mismatching frame — a crash mid-append leaves a
partial tail, and discarding it restores exactly the durable prefix.
Because the tier syncs the journal before a segment ``sync()`` returns,
"segment sealed" and "SEAL record durable" are the same event: a torn
SEAL record can only belong to a segment whose fsync never completed,
which the storage contract already allows to vanish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidArgumentError
from repro.util.crc import crc32c, crc32c_masked, crc32c_unmask
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    decode_varint32,
    encode_fixed32,
    encode_fixed64,
    encode_varint32,
)

OP_SEAL = 1
OP_COMMIT = 2
OP_DELETE = 3
OP_RENAME = 4

_OP_NAMES = {OP_SEAL: "seal", OP_COMMIT: "commit",
             OP_DELETE: "delete", OP_RENAME: "rename"}

#: device blob the journal lives in ("." prefix keeps it out of every
#: database path the engine can generate)
JOURNAL_BLOB = ".bb/journal"


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    op: int
    path: str
    size: int = 0
    crc: int = 0
    dst: Optional[str] = None  # RENAME only

    @property
    def op_name(self) -> str:
        return _OP_NAMES.get(self.op, f"op{self.op}")


def _encode_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_varint32(len(raw)) + raw


def _decode_str(buf: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint32(buf, offset)
    return buf[offset : offset + length].decode("utf-8"), offset + length


def encode_record(record: JournalRecord) -> bytes:
    """Frame one record (length + masked CRC + payload)."""
    payload = bytes([record.op]) + _encode_str(record.path)
    if record.op in (OP_SEAL, OP_COMMIT):
        payload += encode_fixed64(record.size) + encode_fixed32(record.crc)
    elif record.op == OP_RENAME:
        if record.dst is None:
            raise InvalidArgumentError("RENAME record needs a dst")
        payload += _encode_str(record.dst)
    elif record.op != OP_DELETE:
        raise InvalidArgumentError(f"unknown journal op {record.op}")
    header = encode_fixed32(len(payload)) + encode_fixed32(
        crc32c_masked(payload)
    )
    return header + payload


def decode_records(raw: bytes) -> tuple[list[JournalRecord], int]:
    """Decode the durable prefix of a journal blob.

    Returns ``(records, consumed)``: parsing stops (without raising) at
    the first torn or corrupt frame — everything after a bad frame is a
    crash artifact by construction.
    """
    records: list[JournalRecord] = []
    offset = 0
    total = len(raw)
    while offset + 8 <= total:
        length = decode_fixed32(raw, offset)
        crc = decode_fixed32(raw, offset + 4)
        start = offset + 8
        end = start + length
        if end > total:
            break  # torn tail: the payload never fully landed
        payload = raw[start:end]
        if crc32c_unmask(crc) != crc32c(payload):
            break  # corrupt frame: treat like a torn tail
        try:
            records.append(_decode_payload(payload))
        except (IndexError, UnicodeDecodeError, InvalidArgumentError):
            break
        offset = end
    return records, offset


def _decode_payload(payload: bytes) -> JournalRecord:
    op = payload[0]
    path, offset = _decode_str(payload, 1)
    if op in (OP_SEAL, OP_COMMIT):
        size = decode_fixed64(payload, offset)
        crc = decode_fixed32(payload, offset + 8)
        return JournalRecord(op=op, path=path, size=size, crc=crc)
    if op == OP_RENAME:
        dst, _ = _decode_str(payload, offset)
        return JournalRecord(op=op, path=path, dst=dst)
    if op == OP_DELETE:
        return JournalRecord(op=op, path=path)
    raise InvalidArgumentError(f"unknown journal op {op}")


class DrainJournal:
    """The journal bound to one device blob."""

    def __init__(self, device, blob: str = JOURNAL_BLOB):
        self.device = device
        self.blob = blob
        self.records_written = 0
        if not device.exists(blob):
            device.create(blob)

    def append(self, record: JournalRecord, sync: bool = True) -> None:
        """Append one record; with ``sync`` it is durable on return."""
        self.device.append(self.blob, encode_record(record))
        if sync:
            self.device.sync(self.blob)
        self.records_written += 1

    def seal(self, path: str, size: int, crc: int) -> None:
        self.append(JournalRecord(op=OP_SEAL, path=path, size=size, crc=crc))

    def commit(self, path: str, size: int, crc: int) -> None:
        self.append(JournalRecord(op=OP_COMMIT, path=path, size=size, crc=crc))

    def delete(self, path: str) -> None:
        self.append(JournalRecord(op=OP_DELETE, path=path))

    def rename(self, src: str, dst: str) -> None:
        self.append(JournalRecord(op=OP_RENAME, path=src, dst=dst))

    def replay(self) -> list[JournalRecord]:
        """Durable record prefix, truncating any torn tail in place.

        Truncation keeps the blob parseable for the next incarnation
        without re-reading past the same garbage.
        """
        raw = self.device.read(self.blob, 0, self.device.size(self.blob))
        records, consumed = decode_records(raw)
        if consumed < len(raw):
            self.device.create(self.blob)
            if consumed:
                self.device.append(self.blob, raw[:consumed])
            self.device.sync(self.blob)
        return records
