"""The burst-buffer tier: absorb, seal, drain, degrade, recover.

Write path (the happy case)::

    flush/foreground write ──► BurstBufferEnv ──► device (absorb, NVMe bw)
        sync()/close() ──► device fsync ──► journal SEAL (durable)  [segment DIRTY]
    drain worker (async, Priority.DRAIN) ──► copy to base env ──► PFS fsync
        ──► journal COMMIT (durable)                               [segment COMMITTED]

Sealing *is* the durability point the caller observes: ``sync()`` does
not return until the segment bytes and the SEAL record are both on the
device, so the LSM engine's own crash invariants (SSTables synced before
the MANIFEST references them) transfer to the tier unchanged.  The PFS
copy is made durable *before* the COMMIT record is written — the
two-phase drain commit — so recovery can trust a COMMIT unconditionally
and must re-drain (idempotently) anything still DIRTY.

Overflow walks a degradation ladder, never silently losing data:

1. **evict** COMMITTED segments (their PFS copy is durable);
2. **backpressure** — wait up to ``overflow_timeout`` for the drain to
   free space;
3. **degrade** — migrate the writer to write-through against the base
   env and record a :class:`BurstBufferDegradedReport` (mirroring the
   checkpoint path's ``DegradedWriteReport``).

Device failure degrades the same way (write-through), and drain failures
against degraded OSTs retry with exponential backoff on top of the
client's own RPC retry budget; a segment whose retries are exhausted is
*parked* still-DIRTY (re-queued by :meth:`BurstBufferTier.retry_failed`),
not dropped.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Optional

from repro import sim
from repro.bb.device import BurstBufferConfig, BurstBufferDevice
from repro.bb.journal import (
    OP_COMMIT,
    OP_DELETE,
    OP_RENAME,
    OP_SEAL,
    DrainJournal,
    JournalRecord,
)
from repro.errors import NotFoundError, StorageIOError
from repro.fault.schedule import FaultSpec, SimulatedCrash
from repro.io import Priority, io_priority
from repro.lsm.env import (
    Env,
    RandomAccessFile,
    SequentialFile,
    WritableFile,
)
from repro.trace import runtime as _trace
from repro.util.crc import crc32c

#: page-cache-style batching for device appends (matches SimLustreEnv)
_WRITE_BUFFER = 4 << 20

#: polling slice for the overflow backpressure wait (simulated seconds)
_BACKPRESSURE_SLICE = 0.005


class SegmentState(enum.Enum):
    """Lifecycle of a sealed segment."""

    DIRTY = "dirty"          #: durable on the device, PFS copy pending
    COMMITTED = "committed"  #: PFS copy durable too (evictable)


class _Segment:
    __slots__ = ("state", "size", "crc", "seq", "resident")

    def __init__(self, state: SegmentState, size: int, crc: int, seq: int,
                 resident: bool = True):
        self.state = state
        self.size = size
        self.crc = crc
        self.seq = seq
        self.resident = resident


@dataclass
class BurstBufferDegradedReport:
    """What the tier's fault machinery did (mirrors DegradedWriteReport)."""

    #: False when segments are parked undrained (PFS copy still missing)
    completed: bool = True
    #: the tier fell back to write-through for at least one file
    write_through: bool = False
    drain_retries: int = 0
    drain_failures: int = 0
    evictions: int = 0
    overflow_waits: int = 0
    #: simulated seconds writers spent backpressure-waiting for space
    overflow_wait_time: float = 0.0
    #: segments whose drain retry budget was exhausted (still on device)
    failed_segments: tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def degraded(self) -> bool:
        """True when the tier needed the fault path at all."""
        return (
            not self.completed
            or self.write_through
            or self.drain_retries > 0
            or self.drain_failures > 0
            or self.overflow_waits > 0
        )

    def merged(self, other: "BurstBufferDegradedReport") -> "BurstBufferDegradedReport":
        return BurstBufferDegradedReport(
            completed=self.completed and other.completed,
            write_through=self.write_through or other.write_through,
            drain_retries=self.drain_retries + other.drain_retries,
            drain_failures=self.drain_failures + other.drain_failures,
            evictions=self.evictions + other.evictions,
            overflow_waits=self.overflow_waits + other.overflow_waits,
            overflow_wait_time=self.overflow_wait_time + other.overflow_wait_time,
            failed_segments=tuple(
                sorted(set(self.failed_segments) | set(other.failed_segments))
            ),
            error=self.error or other.error,
        )

    def summary(self) -> str:
        status = "completed" if self.completed else "INCOMPLETE"
        if not self.degraded:
            return f"drain {status}: clean (no faults)"
        parts = [
            f"drain {status} degraded:",
            f"{self.drain_retries} retries,",
            f"{self.drain_failures} failures,",
            f"{self.overflow_waits} overflow waits "
            f"({self.overflow_wait_time * 1e3:.1f}ms)",
        ]
        if self.write_through:
            parts.append("[write-through fallback]")
        if self.failed_segments:
            parts.append(
                "(parked: " + ", ".join(self.failed_segments) + ")"
            )
        if self.error:
            parts.append(f"error: {self.error}")
        return " ".join(parts)


class BurstBufferStats:
    """Counters exported under ``bb.{tier}`` in the metrics registry."""

    def __init__(self) -> None:
        self.bytes_absorbed = 0
        self.bytes_written_through = 0
        self.bytes_drained = 0
        self.segments_sealed = 0
        self.segments_committed = 0
        self.segments_recovered = 0
        self.segments_discarded = 0
        self.drain_retries = 0
        self.drain_failures = 0
        self.drain_time = 0.0
        self.evictions = 0
        self.overflow_waits = 0
        self.overflow_wait_time = 0.0
        self.degraded_writes = 0
        self.resident_bytes = 0
        self.dirty_bytes = 0
        self.max_resident_bytes = 0
        self.max_dirty_bytes = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class BurstBufferTier:
    """One node's burst buffer: device + journal + async drain worker."""

    def __init__(
        self,
        base_env: Env,
        device: Optional[BurstBufferDevice] = None,
        config: Optional[BurstBufferConfig] = None,
        schedule=None,
        name: str = "bb0",
        engine=None,
    ):
        if device is None:
            if engine is None:
                engine = sim.current_engine()
            device = BurstBufferDevice(engine, config=config, name=f"{name}.dev")
        self.base_env = base_env
        self.device = device
        self.config = config or device.config
        self.name = name
        self.engine = device.engine
        self.stats = BurstBufferStats()
        self.journal = DrainJournal(device)
        self.crashed = False
        #: report accumulated since the last drain_barrier()
        self._report = BurstBufferDegradedReport()
        self.last_degraded_report: Optional[BurstBufferDegradedReport] = None
        self._segments: dict[str, _Segment] = {}
        #: paths with an open writable handle — never evictable, their
        #: blob is still being appended to
        self._open_paths: set[str] = set()
        self._parked: dict[str, int] = {}
        self._seq = itertools.count(1)
        self._queue = sim.Store(self.engine, name=f"{name}.drain")
        self._pending = 0
        self._waiters: list[sim.Event] = []
        self._seal_count = 0
        self._drain_count = 0
        # declarative bb_* faults from the schedule
        self._timed: list[tuple[float, int, FaultSpec]] = []
        self._timed_seq = itertools.count()
        self._seal_crashes: dict[int, FaultSpec] = {}
        self._drain_crashes: dict[int, FaultSpec] = {}
        if schedule is not None:
            for spec in schedule.specs:
                if spec.kind in ("bb_device_fail", "bb_device_recover"):
                    heapq.heappush(
                        self._timed,
                        (spec.at_time, next(self._timed_seq), spec),
                    )
                elif spec.kind == "bb_dirty_crash":
                    if spec.phase == "torn_journal":
                        self._seal_crashes[spec.at_count] = spec
                    else:
                        self._drain_crashes[spec.at_count] = spec
        metrics = _trace.METRICS
        if metrics is not None:
            metrics.register(f"bb.{name}", self.stats)
        sampler = _trace.SAMPLER
        if sampler is not None:
            sampler.register(
                f"bb.{name}.resident_bytes",
                lambda s=self.stats: s.resident_bytes,
            )
            sampler.register(
                f"bb.{name}.dirty_bytes",
                lambda s=self.stats: s.dirty_bytes,
            )
        self._recover()
        self._worker = self.engine.spawn(
            self._drain_worker, name=f"{name}.drain", daemon=True
        )

    # -- env facade --------------------------------------------------------

    @property
    def env(self) -> "BurstBufferEnv":
        return BurstBufferEnv(self)

    # -- declarative faults ------------------------------------------------

    def _advance(self, now: float) -> None:
        while self._timed and self._timed[0][0] <= now:
            _, _, spec = heapq.heappop(self._timed)
            if spec.kind == "bb_device_fail":
                self.device.fail()
                if spec.duration is not None:
                    heapq.heappush(
                        self._timed,
                        (
                            spec.at_time + spec.duration,
                            next(self._timed_seq),
                            FaultSpec(
                                "bb_device_recover",
                                at_time=spec.at_time + spec.duration,
                            ),
                        ),
                    )
            else:
                self.device.recover()

    def _crash_now(self, why: str) -> None:
        """Node death with a dirty buffer: tear tails, kill waiters."""
        self.crashed = True
        self.device.crash()
        exc = SimulatedCrash(why)
        while self._waiters:
            self._waiters.pop().fail(SimulatedCrash(why))
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant("bb", "crash", tier=self.name, why=why)
        raise exc

    def _check_alive(self) -> None:
        if self.crashed:
            raise SimulatedCrash(
                f"burst-buffer tier {self.name} is crashed; build a new "
                "tier over the device to recover"
            )

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the segment table from the journal's durable prefix.

        Torn/mismatching DIRTY segments are *discarded* (their seal never
        completed or their bytes are damaged) so reads fall back to the
        base env — and if the PFS copy is missing too, the epoch simply
        never committed and the Checkpointer falls back further.  Valid
        DIRTY segments are re-queued for drain (idempotent: COMMIT only
        follows a fresh PFS fsync).
        """
        records = self.journal.replay()
        if not records and not any(
            p for p in self.device.paths() if not p.startswith(".bb/")
        ):
            return
        table: dict[str, _Segment] = {}
        for record in records:
            if record.op == OP_SEAL:
                table[record.path] = _Segment(
                    SegmentState.DIRTY, record.size, record.crc,
                    next(self._seq),
                )
            elif record.op == OP_COMMIT:
                seg = table.get(record.path)
                if (
                    seg is not None
                    and seg.size == record.size
                    and seg.crc == record.crc
                ):
                    seg.state = SegmentState.COMMITTED
            elif record.op == OP_DELETE:
                table.pop(record.path, None)
            elif record.op == OP_RENAME and record.path in table:
                table[record.dst] = table.pop(record.path)
        recovered = discarded = 0
        for path, seg in sorted(table.items()):
            if self.device.exists(path):
                content = self.device.read(path, 0, self.device.size(path))
                valid = (
                    len(content) == seg.size and crc32c(content) == seg.crc
                )
            else:
                content, valid = b"", False
            if valid:
                seg.resident = True
                self._segments[path] = seg
                if seg.state is SegmentState.DIRTY:
                    recovered += 1
                    self.stats.dirty_bytes += seg.size
                    self._enqueue(path, seg.seq)
            elif seg.state is SegmentState.COMMITTED:
                # the PFS copy is the durable one; drop the damaged blob
                if self.device.exists(path):
                    self.device.delete(path)
                seg.resident = False
                self._segments[path] = seg
            else:
                if self.device.exists(path):
                    self.device.delete(path)
                discarded += 1
        # blobs with no durable SEAL were never observably synced: a
        # crash is allowed to lose them entirely
        for path in self.device.paths():
            if path.startswith(".bb/") or path in table:
                continue
            self.device.delete(path)
            discarded += 1
        self.stats.segments_recovered += recovered
        self.stats.segments_discarded += discarded
        self._refresh_gauges()
        tracer = _trace.TRACER
        if tracer is not None and (recovered or discarded):
            tracer.instant(
                "bb", "recover", tier=self.name,
                recovered=recovered, discarded=discarded,
            )

    # -- write path (called by _BBWritableFile) ----------------------------

    def _open_segment(self, path: str) -> bool:
        """Start (or restart) a device-resident file at ``path``.

        Returns False when the tier is degraded to write-through or the
        device is down — the caller writes to the base env instead.
        """
        self._check_alive()
        self._advance(sim.now())
        if not self.device.up:
            self._degrade("device down")
            return False
        old = self._segments.pop(path, None)
        if old is not None:
            self.journal.delete(path)
            if old.state is SegmentState.DIRTY:
                self.stats.dirty_bytes -= old.size
        if self.device.exists(path):
            self.device.delete(path)
        self.device.create(path)
        self._open_paths.add(path)
        return True

    def _absorb(self, path: str, chunk: bytes) -> bool:
        """Append ``chunk`` on the device; False → degrade the writer.

        The absorb latency histogram covers the whole admission — room
        making (evict + backpressure wait) included — because that wait
        is exactly what the tier's effective-bandwidth claim hides.
        """
        tele = _trace.TELEMETRY
        if tele is None:
            return self._absorb_impl(path, chunk)
        start = sim.now()
        try:
            return self._absorb_impl(path, chunk)
        finally:
            tele.observe("bb.absorb", sim.now() - start)

    def _absorb_impl(self, path: str, chunk: bytes) -> bool:
        self._check_alive()
        self._advance(sim.now())
        if not self.device.up:
            self._degrade("device down")
            return False
        if not self._make_room(len(chunk)):
            if not self.config.degrade_on_overflow:
                raise StorageIOError(
                    f"burst buffer full ({self.device.used_bytes} / "
                    f"{self.config.capacity} bytes) and degradation "
                    "is disabled"
                )
            self._degrade("tier overflow")
            return False
        try:
            self.device.append(path, chunk)
        except StorageIOError:
            self._degrade("device failed mid-write")
            return False
        self.stats.bytes_absorbed += len(chunk)
        self._refresh_gauges()
        return True

    def _make_room(self, nbytes: int) -> bool:
        """The first two ladder rungs: evict, then backpressure-wait."""
        if self.device.free_bytes >= nbytes:
            return True
        self._evict_committed(nbytes)
        if self.device.free_bytes >= nbytes:
            return True
        deadline = sim.now() + self.config.overflow_timeout
        waited_from = sim.now()
        self.stats.overflow_waits += 1
        self._report.overflow_waits += 1
        tracer = _trace.TRACER
        span = None
        if tracer is not None:
            span = tracer.span(
                "bb", "backpressure", tier=self.name, nbytes=nbytes,
            )
        try:
            while sim.now() < deadline:
                if self._pending == 0 and not self._parked:
                    break  # nothing draining: waiting cannot help
                sim.sleep(min(_BACKPRESSURE_SLICE, deadline - sim.now()))
                self._check_alive()
                self._evict_committed(nbytes)
                if self.device.free_bytes >= nbytes:
                    return True
        finally:
            waited = sim.now() - waited_from
            self.stats.overflow_wait_time += waited
            self._report.overflow_wait_time += waited
            if span is not None:
                span.finish()
        return self.device.free_bytes >= nbytes

    def _evict_committed(self, needed: int) -> None:
        """Drop resident COMMITTED blobs (their PFS copy is durable)."""
        if self.device.free_bytes >= needed:
            return
        for path in sorted(self._segments):
            seg = self._segments[path]
            if seg.state is not SegmentState.COMMITTED or not seg.resident:
                continue
            if path in self._open_paths:
                continue  # an open writer is still appending to the blob
            if not self.device.exists(path):
                seg.resident = False
                continue
            self.device.delete(path)
            seg.resident = False
            self.stats.evictions += 1
            self._report.evictions += 1
            if self.device.free_bytes >= needed:
                break
        self._refresh_gauges()

    def _degrade(self, reason: str) -> None:
        self.stats.degraded_writes += 1
        self._report.write_through = True
        if self._report.error is None:
            self._report.error = reason
        self.last_degraded_report = self._report
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant("bb", "degrade", tier=self.name, reason=reason)

    def _seal(self, path: str) -> None:
        """Make the segment durable and queue its drain (state DIRTY)."""
        self._check_alive()
        self.device.sync(path)
        size = self.device.size(path)
        content = self.device.read(path, 0, size) if size else b""
        crc = crc32c(content)
        self._seal_count += 1
        torn = self._seal_crashes.pop(self._seal_count, None)
        if torn is not None:
            # crash between the SEAL append and the journal fsync: the
            # record may tear; the caller's sync() never returns, so
            # losing this segment is within the storage contract
            self.journal.append(
                JournalRecord(op=OP_SEAL, path=path, size=size, crc=crc),
                sync=False,
            )
            self._crash_now(
                f"node died during seal #{self._seal_count} of {path} "
                "(torn journal record)"
            )
        self.journal.seal(path, size, crc)
        old = self._segments.get(path)
        if old is not None and old.state is SegmentState.DIRTY:
            self.stats.dirty_bytes -= old.size
        seq = next(self._seq)
        self._segments[path] = _Segment(SegmentState.DIRTY, size, crc, seq)
        self.stats.segments_sealed += 1
        self.stats.dirty_bytes += size
        self._refresh_gauges()
        self._enqueue(path, seq)
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant("bb", "seal", tier=self.name, path=path, nbytes=size)

    def _enqueue(self, path: str, seq: int) -> None:
        self._pending += 1
        self._queue.put((path, seq))

    # -- the async drain ---------------------------------------------------

    def _drain_worker(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            path, seq = task
            try:
                self._service(path, seq)
            finally:
                self._pending -= 1
                if self._pending == 0:
                    while self._waiters:
                        self._waiters.pop().succeed()

    def _service(self, path: str, seq: int) -> None:
        seg = self._segments.get(path)
        if (
            seg is None
            or seg.seq != seq
            or seg.state is not SegmentState.DIRTY
            or not seg.resident
        ):
            return  # superseded by a re-seal, rename, or delete
        self._drain_count += 1
        crash = self._drain_crashes.pop(self._drain_count, None)
        start = sim.now()
        tracer = _trace.TRACER
        span = None
        if tracer is not None:
            span = tracer.span(
                "bb", "drain", tier=self.name, path=path, nbytes=seg.size,
            )
        try:
            self._copy_out(path, seg, crash)
        except SimulatedCrash:
            raise
        except StorageIOError as exc:
            self._parked[path] = seq
            self.stats.drain_failures += 1
            self._report.drain_failures += 1
            self._report.completed = False
            self._report.failed_segments = tuple(
                sorted(set(self._report.failed_segments) | {path})
            )
            self._report.error = self._report.error or str(exc)
            self.last_degraded_report = self._report
            return
        finally:
            tele = _trace.TELEMETRY
            if tele is not None:
                tele.observe("bb.drain", sim.now() - start)
            if span is not None:
                span.finish()
        if self._segments.get(path) is not seg:
            # re-sealed/renamed while we were copying: the bytes we just
            # wrote are a stale prefix the newer drain task will overwrite
            return
        # phase 2: the PFS copy is durable — only now admit it
        self.journal.commit(path, seg.size, seg.crc)
        seg.state = SegmentState.COMMITTED
        self.stats.segments_committed += 1
        self.stats.bytes_drained += seg.size
        self.stats.dirty_bytes -= seg.size
        self.stats.drain_time += sim.now() - start
        self._refresh_gauges()

    def _copy_out(self, path: str, seg: _Segment,
                  crash: Optional[FaultSpec]) -> None:
        """Phase 1 with retry/backoff: segment bytes + fsync on the PFS."""
        attempts = 0
        chunk_size = self.config.drain_chunk
        while True:
            try:
                with io_priority(Priority.DRAIN):
                    out = self.base_env.new_writable_file(path)
                    offset = 0
                    while offset < seg.size:
                        chunk = self.device.read(path, offset, chunk_size)
                        if not chunk:
                            raise StorageIOError(
                                f"segment {path} shrank mid-drain"
                            )
                        out.append(chunk)
                        offset += len(chunk)
                        if (
                            crash is not None
                            and crash.phase == "mid_drain"
                            and offset * 2 >= seg.size
                        ):
                            self._crash_now(
                                f"node died mid-drain of {path} "
                                f"({offset}/{seg.size} bytes copied)"
                            )
                    out.sync()
                    if crash is not None and crash.phase == "pre_commit":
                        self._crash_now(
                            f"node died after draining {path} but before "
                            "the commit record"
                        )
                    out.close()
                return
            except SimulatedCrash:
                raise
            except StorageIOError:
                attempts += 1
                if attempts > self.config.drain_retries:
                    raise
                self.stats.drain_retries += 1
                self._report.drain_retries += 1
                sim.sleep(self.config.drain_backoff * (2 ** (attempts - 1)))

    # -- barriers & control ------------------------------------------------

    def drain_barrier(self) -> BurstBufferDegradedReport:
        """Block until the drain backlog is empty; return what happened.

        Parked segments (retry budget exhausted) do not block the
        barrier — they are reported as ``completed=False`` with their
        paths in ``failed_segments``; :meth:`retry_failed` re-queues
        them once the fault clears.
        """
        self._check_alive()
        while self._pending > 0:
            gate = sim.Event(self.engine, name=f"{self.name}.drained")
            self._waiters.append(gate)
            sim.wait(gate)
            self._check_alive()
        report = self._report
        self._report = BurstBufferDegradedReport()
        self.last_degraded_report = report
        return report

    def retry_failed(self) -> int:
        """Re-queue every parked segment (e.g. after OST recovery)."""
        self._check_alive()
        parked, self._parked = self._parked, {}
        requeued = 0
        for path, seq in sorted(parked.items()):
            seg = self._segments.get(path)
            if seg is None or seg.seq != seq:
                continue
            self._enqueue(path, seq)
            requeued += 1
        return requeued

    def crash(self) -> None:
        """Imperative node-death for tests: tear tails, kill the tier."""
        try:
            self._crash_now("burst-buffer node crashed (test-injected)")
        except SimulatedCrash:
            pass

    def close(self) -> None:
        """Stop the drain worker (pending tasks are abandoned)."""
        self._queue.put(None)
        metrics = _trace.METRICS
        if metrics is not None:
            metrics.unregister(f"bb.{self.name}")
        sampler = _trace.SAMPLER
        if sampler is not None:
            sampler.unregister(f"bb.{self.name}.resident_bytes")
            sampler.unregister(f"bb.{self.name}.dirty_bytes")

    # -- introspection -----------------------------------------------------

    @property
    def pending_drains(self) -> int:
        return self._pending

    @property
    def parked_segments(self) -> tuple[str, ...]:
        return tuple(sorted(self._parked))

    def segment_state(self, path: str) -> Optional[SegmentState]:
        seg = self._segments.get(path)
        return None if seg is None else seg.state

    def dirty_segments(self) -> list[str]:
        return sorted(
            p for p, s in self._segments.items()
            if s.state is SegmentState.DIRTY
        )

    def _refresh_gauges(self) -> None:
        stats = self.stats
        stats.resident_bytes = self.device.used_bytes
        if stats.resident_bytes > stats.max_resident_bytes:
            stats.max_resident_bytes = stats.resident_bytes
        if stats.dirty_bytes > stats.max_dirty_bytes:
            stats.max_dirty_bytes = stats.dirty_bytes
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.gauge("bb", f"{self.name}.resident_bytes",
                         stats.resident_bytes)
            tracer.gauge("bb", f"{self.name}.dirty_bytes", stats.dirty_bytes)


# ---------------------------------------------------------------------------
# The Env facade
# ---------------------------------------------------------------------------


class _BBWritableFile(WritableFile):
    """Writes absorb into the device, degrading to write-through."""

    def __init__(self, tier: BurstBufferTier, path: str, on_device: bool):
        self._tier = tier
        self._path = path
        self._buffer = bytearray()
        self._base: Optional[WritableFile] = None
        self._closed = False
        self._sealed_length = -1
        if not on_device:
            self._to_base()

    def _to_base(self) -> None:
        self._base = self._tier.base_env.new_writable_file(self._path)

    def _migrate(self, pending: bytes) -> None:
        """Ladder rung 3: move this file's bytes to the base env."""
        tier = self._tier
        device = tier.device
        self._to_base()
        absorbed = b""
        if device.up and device.exists(self._path):
            absorbed = device.read(self._path, 0, device.size(self._path))
        if absorbed:
            self._base.append(absorbed)
        if self._sealed_length >= 0:
            # a sealed prefix was already durable on the device; keep
            # that durability promise on the new home before dropping it
            self._base.sync()
        old = tier._segments.pop(self._path, None)
        if old is not None:
            if old.state is SegmentState.DIRTY:
                tier.stats.dirty_bytes -= old.size
            try:
                tier.journal.delete(self._path)
            except StorageIOError:
                pass  # device down: the blob is gone with it
        if device.up and device.exists(self._path):
            device.delete(self._path)
        tier._open_paths.discard(self._path)
        tier._refresh_gauges()
        if pending:
            self._base.append(pending)
        tier.stats.bytes_written_through += len(absorbed) + len(pending)

    def append(self, data: bytes) -> None:
        if self._closed:
            raise StorageIOError(f"write to closed file {self._path}")
        if self._base is not None:
            self._tier.stats.bytes_written_through += len(data)
            self._base.append(data)
            return
        self._buffer += data
        while self._base is None and len(self._buffer) >= _WRITE_BUFFER:
            self._emit(_WRITE_BUFFER)

    def _emit(self, nbytes: int) -> None:
        chunk = bytes(self._buffer[:nbytes])
        del self._buffer[:nbytes]
        if not self._tier._absorb(self._path, chunk):
            rest = bytes(self._buffer)
            del self._buffer[:]
            self._migrate(chunk + rest)

    def flush(self) -> None:
        if self._base is not None:
            if self._buffer:  # leftovers from before a migration
                self._base.append(bytes(self._buffer))
                self._tier.stats.bytes_written_through += len(self._buffer)
                del self._buffer[:]
            self._base.flush()
            return
        if self._buffer:
            self._emit(len(self._buffer))
            if self._base is not None:
                self._base.flush()

    def sync(self) -> None:
        self.flush()
        if self._base is not None:
            self._base.sync()
            return
        self._tier._seal(self._path)
        self._sealed_length = self._tier.device.size(self._path)

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        if self._base is not None:
            self._base.close()
        elif self._sealed_length != self._tier.device.size(self._path):
            # close() makes the file durable in this env family (the
            # simulated client fsyncs on close); seal unless the last
            # sync already covered every byte
            self._tier._seal(self._path)
        self._tier._open_paths.discard(self._path)
        self._closed = True


class _BBRandomAccessFile(RandomAccessFile):
    def __init__(self, device: BurstBufferDevice, path: str):
        self._device = device
        self._path = path

    def read(self, offset: int, nbytes: int) -> bytes:
        return self._device.read(self._path, offset, nbytes)

    def size(self) -> int:
        return self._device.size(self._path)

    def close(self) -> None:
        pass


class _BBSequentialFile(SequentialFile):
    def __init__(self, device: BurstBufferDevice, path: str):
        self._device = device
        self._path = path
        self._pos = 0

    def read(self, nbytes: int) -> bytes:
        out = self._device.read(self._path, self._pos, nbytes)
        self._pos += len(out)
        return out

    def close(self) -> None:
        pass


class BurstBufferEnv(Env):
    """Union namespace: the fast tier shadows the base (PFS) env.

    Reads prefer the device copy (resident segments) and fall back to
    the base env for drained-and-evicted, migrated, or discarded
    segments — the crash-consistency fallback path the Checkpointer
    leans on.
    """

    def __init__(self, tier: BurstBufferTier):
        self.tier = tier
        self.base = tier.base_env

    # the manager's fault plumbing and scheduler knobs reach through
    @property
    def client(self):
        return getattr(self.base, "client", None)

    @property
    def cluster(self):
        return getattr(self.base, "cluster", None)

    @staticmethod
    def _norm(path: str) -> str:
        return path.strip("/").replace("//", "/")

    def _on_device(self, path: str) -> bool:
        norm = self._norm(path)
        return not norm.startswith(".bb/") and self.tier.device.exists(norm)

    # -- files -------------------------------------------------------------

    def new_writable_file(self, path: str) -> WritableFile:
        norm = self._norm(path)
        on_device = self.tier._open_segment(norm)
        return _BBWritableFile(self.tier, norm, on_device)

    def new_random_access_file(self, path: str) -> RandomAccessFile:
        if self._on_device(path):
            return _BBRandomAccessFile(self.tier.device, self._norm(path))
        return self.base.new_random_access_file(path)

    def new_sequential_file(self, path: str) -> SequentialFile:
        if self._on_device(path):
            return _BBSequentialFile(self.tier.device, self._norm(path))
        return self.base.new_sequential_file(path)

    # -- namespace ---------------------------------------------------------

    def file_exists(self, path: str) -> bool:
        return self._on_device(path) or self.base.file_exists(path)

    def file_size(self, path: str) -> int:
        if self._on_device(path):
            return self.tier.device.size(self._norm(path))
        return self.base.file_size(path)

    def delete_file(self, path: str) -> None:
        norm = self._norm(path)
        tier = self.tier
        found = False
        seg = tier._segments.pop(norm, None)
        if seg is not None:
            tier.journal.delete(norm)
            if seg.state is SegmentState.DIRTY:
                tier.stats.dirty_bytes -= seg.size
            found = True
        if tier.device.exists(norm):
            tier.device.delete(norm)
            found = True
        try:
            self.base.delete_file(path)
            found = True
        except NotFoundError:
            pass
        tier._refresh_gauges()
        if not found:
            raise NotFoundError(f"no such file: {path}")

    def rename_file(self, src: str, dst: str) -> None:
        nsrc, ndst = self._norm(src), self._norm(dst)
        tier = self.tier
        found = False
        seg = tier._segments.pop(nsrc, None)
        if seg is not None:
            tier.journal.rename(nsrc, ndst)
            stale = tier._segments.pop(ndst, None)
            if stale is not None and stale.state is SegmentState.DIRTY:
                tier.stats.dirty_bytes -= stale.size
            # bump the seq so an in-flight drain of the old name is a
            # no-op, and re-queue the new name if still dirty
            seg.seq = next(tier._seq)
            tier._segments[ndst] = seg
            if seg.state is SegmentState.DIRTY and seg.resident:
                tier._enqueue(ndst, seg.seq)
            found = True
        if tier.device.exists(nsrc):
            tier.device.rename(nsrc, ndst)
            found = True
        try:
            self.base.rename_file(src, dst)
            found = True
        except NotFoundError:
            pass
        if not found:
            raise NotFoundError(f"no such file: {src}")

    def create_dir(self, path: str) -> None:
        self.base.create_dir(path)

    def get_children(self, path: str) -> list[str]:
        norm = self._norm(path)
        prefix = norm + "/" if norm else ""
        children: set[str] = set()
        base_missing = False
        try:
            children.update(self.base.get_children(path))
        except NotFoundError:
            base_missing = True
        for blob in self.tier.device.paths():
            if blob.startswith(".bb/"):
                continue
            if blob.startswith(prefix):
                children.add(blob[len(prefix):].split("/", 1)[0])
        if not children and base_missing:
            raise NotFoundError(f"no such directory: {path}")
        return sorted(children)

    def join(self, *parts: str) -> str:
        return self.base.join(*parts)

    def lock_file(self, path: str) -> object:
        return self.base.lock_file(path)

    def unlock_file(self, token: object) -> None:
        self.base.unlock_file(token)
