"""Node-local burst-buffer tier with a crash-consistent write-back drain.

Production checkpointing systems interpose a node-local NVMe tier
between the application and the parallel file system: checkpoints land
at device bandwidth and drain to the OSTs asynchronously (Wang et al.,
"Development of a Burst Buffer System for Data-Intensive Applications").
This package reproduces that tier on the simulated clock:

- :class:`~repro.bb.device.BurstBufferDevice` — the seeded persistence
  model: capacity, write/read bandwidth, torn-write crash semantics,
  device failure.  The device object survives simulated node restarts;
  tests rebuild the tier over the same device.
- :class:`~repro.bb.journal.DrainJournal` — CRC-32C length-prefixed
  segment manifest.  A torn tail is discarded prefix-consistently, so
  recovery always sees some durable prefix of seal/commit history.
- :class:`~repro.bb.tier.BurstBufferTier` — absorbs LSM flush-path
  writes, seals segments durably at ``sync``/``close``, and drains them
  to the base env through the I/O scheduler under
  :attr:`~repro.io.Priority.DRAIN` with a two-phase commit (data +
  fsync to the PFS, then the journal COMMIT record).  Overflow walks a
  degradation ladder — evict committed segments, backpressure-wait,
  then write-through (:class:`~repro.bb.tier.BurstBufferDegradedReport`)
  — never silent loss.
- :class:`~repro.bb.tier.BurstBufferEnv` — the :class:`~repro.lsm.env.Env`
  facade: a union namespace where the fast tier shadows the PFS copy and
  reads fall back to the OSTs for drained/evicted/torn segments.
"""

from repro.bb.device import BurstBufferConfig, BurstBufferDevice
from repro.bb.journal import DrainJournal, JournalRecord
from repro.bb.tier import (
    BurstBufferDegradedReport,
    BurstBufferEnv,
    BurstBufferStats,
    BurstBufferTier,
    SegmentState,
)

__all__ = [
    "BurstBufferConfig",
    "BurstBufferDegradedReport",
    "BurstBufferDevice",
    "BurstBufferEnv",
    "BurstBufferStats",
    "BurstBufferTier",
    "DrainJournal",
    "JournalRecord",
    "SegmentState",
]
