"""Exception hierarchy shared across the repro packages.

The hierarchy deliberately mirrors the status-code families of LevelDB /
RocksDB (``NotFound``, ``Corruption``, ``InvalidArgument``, ``IOError``)
because :mod:`repro.lsm` is a faithful LSM engine and :mod:`repro.core`
(LSMIO) surfaces those statuses through its K/V API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class NotFoundError(ReproError, KeyError):
    """A key (or file) does not exist.

    Subclasses :class:`KeyError` so idiomatic ``except KeyError`` works for
    K/V lookups while still being catchable as :class:`ReproError`.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message; undo that.
        return Exception.__str__(self)


class CorruptionError(ReproError):
    """Stored data failed a checksum or structural validation."""


class InvalidArgumentError(ReproError, ValueError):
    """An API was called with arguments that can never be valid."""


class StorageIOError(ReproError, IOError):
    """An underlying storage operation failed."""


class OstUnavailableError(StorageIOError):
    """An RPC reached an OST whose failure domain is down.

    Sits in the ``IOError`` family of the LevelDB-style hierarchy: the
    request was well-formed and the data may be intact, but the storage
    target cannot serve it right now.  Transient by contract — the client
    retry path (:meth:`repro.pfs.client.LustreClient.write` etc.) backs
    off and re-issues; only when the retry budget is exhausted does the
    failure escalate to :class:`RetryExhaustedError`.

    ``ost_index`` identifies the failed target so degradation reports can
    name the failure domain.
    """

    def __init__(self, message: str, ost_index: int | None = None):
        super().__init__(message)
        self.ost_index = ost_index


class MdsUnavailableError(StorageIOError):
    """A metadata RPC reached an MDS shard whose failure domain is down.

    The metadata twin of :class:`OstUnavailableError`: transient by
    contract, absorbed by the client's retry/backoff loop, escalating to
    :class:`RetryExhaustedError` only when the budget runs out.

    ``shard_index`` names the failed DNE shard (see
    :class:`repro.pfs.mds.MdsShardGroup`).
    """

    def __init__(self, message: str, shard_index: int | None = None):
        super().__init__(message)
        self.shard_index = shard_index


class RpcTimeoutError(StorageIOError, TimeoutError):
    """A client↔OSS RPC timed out (dropped request or dead server).

    Subclasses both :class:`StorageIOError` (so it stays inside the
    LevelDB-style ``IOError`` status family and is catchable as
    :class:`ReproError`) and the builtin :class:`TimeoutError` so
    idiomatic ``except TimeoutError`` works, mirroring how
    :class:`NotFoundError` cooperates with ``except KeyError``.
    """

    def __init__(self, message: str, ost_index: int | None = None):
        super().__init__(message)
        self.ost_index = ost_index


class RetryExhaustedError(StorageIOError):
    """A retried storage operation failed on every attempt.

    The terminal form of :class:`OstUnavailableError` /
    :class:`RpcTimeoutError`: the client's exponential-backoff loop gave
    up.  Carries the attempt count and the last underlying error so
    callers (and :class:`~repro.core.checkpoint.DegradedWriteReport`) can
    explain *why* the write path degraded.
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: BaseException | None = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class DegradedWriteError(StorageIOError):
    """A write barrier could not make all data durable.

    Raised by :meth:`repro.core.manager.LsmioManager.write_barrier` when
    the flush hit a fault the retry path could not absorb.  Carries the
    structured :class:`~repro.core.checkpoint.DegradedWriteReport` (as
    ``report``) describing which failure domains were involved and how
    much retrying was attempted, so checkpoint layers can fall back to
    the last complete epoch instead of guessing.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class ClosedError(ReproError):
    """An operation was attempted on a closed database, store, or stream."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """Every live simulated process is blocked and no events remain."""
