"""Exception hierarchy shared across the repro packages.

The hierarchy deliberately mirrors the status-code families of LevelDB /
RocksDB (``NotFound``, ``Corruption``, ``InvalidArgument``, ``IOError``)
because :mod:`repro.lsm` is a faithful LSM engine and :mod:`repro.core`
(LSMIO) surfaces those statuses through its K/V API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class NotFoundError(ReproError, KeyError):
    """A key (or file) does not exist.

    Subclasses :class:`KeyError` so idiomatic ``except KeyError`` works for
    K/V lookups while still being catchable as :class:`ReproError`.
    """

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message; undo that.
        return Exception.__str__(self)


class CorruptionError(ReproError):
    """Stored data failed a checksum or structural validation."""


class InvalidArgumentError(ReproError, ValueError):
    """An API was called with arguments that can never be valid."""


class StorageIOError(ReproError, IOError):
    """An underlying storage operation failed."""


class ClosedError(ReproError):
    """An operation was attempted on a closed database, store, or stream."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """Every live simulated process is blocked and no events remain."""
