"""repro — a from-scratch Python reproduction of LSMIO (Bulut & Wright, SC-W 2023).

LSMIO routes HPC checkpoint data through a log-structured merge-tree so that
bursty, write-once checkpoint traffic reaches a parallel file system as large
sequential appends.  This package contains:

- :mod:`repro.lsm` — a complete LSM-tree storage engine (memtable, WAL,
  SSTables, compaction, block cache) with the customization knobs LSMIO
  relies on (disable WAL / compression / caching / compaction, sync/async
  writes, buffer and block size control);
- :mod:`repro.core` — the LSMIO library itself: the K/V manager, the
  FStream API and the ADIOS2-style plugin engine;
- :mod:`repro.sim`, :mod:`repro.mpi`, :mod:`repro.pfs` — a discrete-event
  simulation substrate (MPI ranks, Lustre file system with OSTs/OSSs/MDS and
  an HDD mechanics model) used to reproduce the paper's cluster experiments;
- :mod:`repro.iolibs` — operation-faithful models of the comparator
  libraries (POSIX/IOR baseline, HDF5, ADIOS2 BP5) over the simulated PFS;
- :mod:`repro.ior` — an IOR benchmark clone driving all of the above;
- :mod:`repro.bench` — per-figure experiment harnesses.

Quickstart::

    from repro.core import LsmioManager, LsmioOptions

    mgr = LsmioManager("/tmp/ckpt-db", LsmioOptions())
    mgr.put("rank0/field/temperature", b"...bytes...")
    mgr.write_barrier()
    assert mgr.get("rank0/field/temperature") == b"...bytes..."
    mgr.close()
"""

from repro._version import __version__

__all__ = ["__version__"]
