"""A flush executor that runs jobs as simulated background processes.

Plugs into :class:`repro.lsm.db.DB` (and therefore LSMIO) when the engine
runs under the discrete-event clock: an *asynchronous* flush becomes a
sim process overlapping the writer's simulated time, exactly like the
paper's single background flush thread (§3.1.2).  ``drain()`` is the
write barrier; it accepts a priority filter so checkpoint barriers wait
only on FOREGROUND+FLUSH work while a trailing compaction keeps running.

Error contract (matches :class:`repro.lsm.executors.ThreadExecutor`):
jobs are chained, so the *first* failure propagates down the chain and
``drain()`` re-raises that first exception exactly once; jobs submitted
after the error has been reported at a barrier run normally.  ``close()``
is idempotent — a second call is a no-op even if the first one raised.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import sim
from repro.io import Priority, io_priority
from repro.lsm.executors import Executor


def _propagated_error(
    exc: BaseException, proc: sim.Process
) -> Optional[BaseException]:
    """``proc``'s original failure, if ``exc`` is how ``sim.wait`` surfaced it.

    ``sim.wait`` hands each waiter a per-waiter replica chained to the
    original via ``__cause__`` (so tracebacks don't accrete across
    waiters); the executor's error bookkeeping is by identity, so unwrap
    back to the original instance.  Returns None for unrelated exceptions
    (e.g. :class:`sim.ProcessKilled`), which callers must re-raise.
    """
    original = proc.error
    if original is None:
        return None
    if exc is original or exc.__cause__ is original:
        return original
    return None


class SimExecutor(Executor):
    """Run jobs as (serialized) background processes on one engine.

    Jobs are chained so at most one runs at a time — the paper's "single
    thread ... configured for flushing writes".  The chain is global
    across priority classes (one background thread), but the executor
    tracks the last job per class so a filtered drain can wait for "all
    flushes" without waiting for a compaction queued behind them.
    """

    def __init__(self, engine: sim.Engine, name: str = "lsm-flush"):
        self._engine = engine
        self._name = name
        self._last: Optional[sim.Process] = None
        self._last_by_class: Dict[Priority, sim.Process] = {}
        self._count = 0
        self._closed = False
        #: exception instances already re-raised at a barrier — they must
        #: not poison later jobs or surface twice (id() keys: exceptions
        #: are compared by identity, never equality)
        self._reported: set[int] = set()

    def submit(
        self, job: Callable[[], None], priority: Priority = Priority.FLUSH
    ) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")
        predecessor = self._last
        self._count += 1

        def run() -> None:
            if predecessor is not None:
                if predecessor.alive:
                    try:
                        sim.wait(predecessor.done)
                    except BaseException as exc:
                        original = _propagated_error(exc, predecessor)
                        if original is None:
                            raise
                        if id(original) not in self._reported:
                            # Re-raise the *original* instance so every
                            # poisoned job in the chain carries the first
                            # failure, preserving drain()'s raise-once
                            # identity bookkeeping.
                            raise original
                        # already surfaced at a barrier
                elif (
                    predecessor.error is not None
                    and id(predecessor.error) not in self._reported
                ):
                    raise predecessor.error
            with io_priority(priority):
                job()

        # Daemon: a failed flush must surface at drain() — the write
        # barrier — like ThreadExecutor's deferred error, not crash the
        # event loop from a background process.
        proc = self._engine.spawn(
            run, name=f"{self._name}-{self._count}", daemon=True
        )
        self._last = proc
        self._last_by_class[priority] = proc

    def _targets(
        self, priorities: Optional[Iterable[Priority]]
    ) -> Tuple[sim.Process, ...]:
        if priorities is None:
            return (self._last,) if self._last is not None else ()
        out: list[sim.Process] = []
        for priority in priorities:
            proc = self._last_by_class.get(priority)
            if proc is not None and proc not in out:
                out.append(proc)
        return tuple(out)

    def drain(self, priorities: Optional[Iterable[Priority]] = None) -> None:
        # Jobs can enqueue follow-up work while we wait (a flush job
        # submits its compaction check), so loop until the drained
        # classes are quiescent, not just until today's tail finished.
        if priorities is not None:
            priorities = tuple(priorities)
        while True:
            targets = self._targets(priorities)
            if not targets:
                return
            for proc in targets:
                if proc.alive:
                    try:
                        sim.wait(proc.done)
                    except BaseException as exc:
                        if _propagated_error(exc, proc) is None:
                            raise
                        # else: collected below, raised exactly once
            if self._targets(priorities) == targets:
                break
        first: Optional[BaseException] = None
        for proc in targets:
            exc = proc.error
            if exc is not None and id(exc) not in self._reported:
                self._reported.add(id(exc))
                # Chained propagation makes every poisoned job carry the
                # *first* failure's instance, so this is the first error.
                if first is None:
                    first = exc
        if first is not None:
            raise first

    def run_jobs(
        self,
        jobs: Iterable[Callable[[], None]],
        priority: Priority = Priority.COMPACTION,
    ) -> None:
        """Run ``jobs`` as *concurrent* sim processes; wait for them all.

        Unlike :meth:`submit`, these do not join the serialized
        background chain: the caller is typically itself a chained
        background job (a compaction) fanning out its key-range
        partitions and waiting here, so chaining them behind itself
        would deadlock.  Failures: every job runs; the first error by
        job index re-raises after all have finished.
        """
        jobs = list(jobs)
        if len(jobs) == 1:
            with io_priority(priority):
                jobs[0]()
            return
        procs: list[sim.Process] = []
        for index, job in enumerate(jobs):

            def run(job: Callable[[], None] = job) -> None:
                with io_priority(priority):
                    job()

            procs.append(
                self._engine.spawn(
                    run, name=f"{self._name}-sub{index}", daemon=True
                )
            )
        first: Optional[BaseException] = None
        for proc in procs:
            if proc.alive:
                try:
                    sim.wait(proc.done)
                except BaseException as exc:
                    if _propagated_error(exc, proc) is None:
                        raise
            if proc.error is not None and first is None:
                first = proc.error
        if first is not None:
            raise first

    def close(self) -> None:
        if self._closed:
            return
        # Flag first: a deferred job error raised out of this drain must
        # not resurface if close() is called again.
        self._closed = True
        self.drain()
