"""A flush executor that runs jobs as simulated background processes.

Plugs into :class:`repro.lsm.db.DB` (and therefore LSMIO) when the engine
runs under the discrete-event clock: an *asynchronous* flush becomes a
sim process overlapping the writer's simulated time, exactly like the
paper's single background flush thread (§3.1.2).  ``drain()`` is the
write barrier.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import sim
from repro.lsm.executors import Executor


class SimExecutor(Executor):
    """Run jobs as (serialized) background processes on one engine.

    Jobs are chained so at most one runs at a time — the paper's "single
    thread ... configured for flushing writes".
    """

    def __init__(self, engine: sim.Engine, name: str = "lsm-flush"):
        self._engine = engine
        self._name = name
        self._last: Optional[sim.Process] = None
        self._count = 0

    def submit(self, job: Callable[[], None]) -> None:
        predecessor = self._last
        self._count += 1

        def run() -> None:
            if predecessor is not None:
                if predecessor.alive:
                    sim.wait(predecessor.done)
                elif predecessor.error is not None:
                    raise predecessor.error
            job()

        # Daemon: a failed flush must surface at drain() — the write
        # barrier — like ThreadExecutor's deferred error, not crash the
        # event loop from a background process.
        self._last = self._engine.spawn(
            run, name=f"{self._name}-{self._count}", daemon=True
        )

    def drain(self) -> None:
        last = self._last
        if last is None:
            return
        if last.alive:
            sim.wait(last.done)
        elif last.error is not None:
            raise last.error

    def close(self) -> None:
        self.drain()
