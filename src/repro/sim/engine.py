"""The event loop, events, and simulated processes (thread and light).

Two process backends share one heap:

- :class:`Process` backs a simulated process with an OS thread so that
  *arbitrary library code* (RocksDB adapters, retry loops, anything that
  calls ``sim.sleep`` from deep inside a call stack) runs in simulated
  time.  Handoff protocol: every process owns a ``threading.Event``
  turnstile; the engine owns one too.  The engine pops the next
  (time, seq, action) off the heap, performs the action — usually
  "resume process P" — and parks on its own turnstile until that process
  blocks again or finishes.  At most one thread is ever runnable, so
  shared state needs no locking, but every resume costs two
  ``threading.Event`` round-trips.
- :class:`LightProcess` backs a process with a *generator* the engine
  drives inline: ``yield seconds`` sleeps, ``yield event`` waits, and the
  yield expression evaluates to the event's value (or raises its
  failure).  No thread, no handoff — resuming is a ``gen.send()``.  The
  high-fan-out internal loops (write-behind RPCs, OST/OSS service, MPI
  shuttles) use this backend; fleet-size workloads spawn tens of
  thousands of them.

Both backends perform *identical* heap operations for the same logic —
``run_blocking`` drives any light-process generator with the thread
primitives — so a scenario replays the same (time, seq) schedule under
either, and runs stay bit-reproducible.
"""

from __future__ import annotations

import copy
import heapq
import itertools
import threading
from time import perf_counter_ns as _wall_ns
from typing import Any, Callable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.telemetry.profiler import site_name as _site_name
from repro.trace import runtime as _trace


class ProcessKilled(BaseException):
    """Raised inside a process thread to unwind it during engine shutdown.

    Derives from :class:`BaseException` so ``except Exception`` blocks in
    library code under test cannot swallow it.
    """


class Event:
    """A one-shot occurrence processes can wait on.

    ``succeed(value)`` wakes all waiters (in registration order) at the
    current simulated time; ``fail(exc)`` wakes them with an exception.
    """

    __slots__ = ("engine", "triggered", "value", "exception", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: list = []  # Process | LightProcess
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.engine._schedule(0.0, proc._resume_action)
        self._waiters.clear()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.exception = exception
        for proc in self._waiters:
            self.engine._schedule(0.0, proc._resume_action)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc) -> None:
        self._waiters.append(proc)


def _failure_for_waiter(exc: BaseException) -> BaseException:
    """A fresh replica of ``exc`` for one waiter to raise.

    Events fan a single failure out to many waiters; re-raising the
    shared object would keep appending each waiter's frames onto one
    traceback, cross-contaminating error reports.  Each waiter gets a
    shallow copy chained to the original via ``__cause__``.  Exceptions
    that will not copy cleanly (or whose copy changes type) are passed
    through unmodified rather than mangled.
    """
    try:
        replica = copy.copy(exc)
    except BaseException:  # noqa: BLE001 — arbitrary user exception types
        return exc
    if type(replica) is not type(exc):
        return exc
    replica.__traceback__ = None
    replica.__cause__ = exc
    replica.__suppress_context__ = True
    return replica


class Process:
    """A simulated process backed by a daemon thread."""

    def __init__(self, engine: "Engine", fn: Callable, args, kwargs, name: str,
                 daemon: bool):
        self.engine = engine
        self.name = name
        self.daemon = daemon
        self.done = Event(engine, name=f"{name}.done")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._resume = threading.Event()
        self._finished = False
        self._killed = False
        self._blocked = False
        self._thread = threading.Thread(
            target=self._bootstrap,
            args=(fn, args, kwargs),
            name=f"sim:{name}",
            daemon=True,
        )
        self._thread.start()

    # -- engine side -----------------------------------------------------

    def _resume_action(self) -> None:
        """Heap action: hand control to this process until it yields."""
        if self._finished:
            return
        self.engine._running_process = self
        self._blocked = False
        self._resume.set()
        self.engine._engine_turnstile.wait()
        self.engine._engine_turnstile.clear()
        self.engine._running_process = None
        if self.error is not None and not self.daemon:
            # Surface crashes immediately instead of deadlocking later.
            raise self.error

    # -- process side ----------------------------------------------------

    def _bootstrap(self, fn: Callable, args, kwargs) -> None:
        self._park()  # wait for the engine's first resume
        try:
            self.result = fn(*args, **kwargs)
        except ProcessKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 — recorded, re-raised by engine
            self.error = exc
        finally:
            self._finished = True
            if not self._killed:
                if not self.done.triggered:
                    if self.error is not None:
                        self.done.fail(self.error)
                    else:
                        self.done.succeed(self.result)
            self.engine._engine_turnstile.set()

    def _park(self) -> None:
        """Block this process thread until the engine resumes it."""
        self._resume.wait()
        self._resume.clear()
        if self._killed:
            raise ProcessKilled()

    def _block_and_switch(self) -> None:
        """Yield control to the engine and park (process side)."""
        self._blocked = True
        self.engine._engine_turnstile.set()
        self._park()

    def _kill(self) -> None:
        """Unwind the backing thread during engine shutdown."""
        self._killed = True
        self._resume.set()
        self._thread.join(timeout=5)

    @property
    def alive(self) -> bool:
        return not self._finished


class LightProcess:
    """A simulated process backed by a generator, dispatched inline.

    The generator speaks a two-word protocol: ``yield seconds`` sleeps,
    ``yield event`` waits (the yield expression evaluates to the event's
    value, or raises its failure inside the generator).  Resuming is a
    plain ``gen.send()`` on the engine's stack — no thread handoff — so
    fleet-size fan-out (one process per RPC, per rank, per shuttle) costs
    two orders of magnitude less than the thread backend.

    Restriction: the generator must not call :func:`sleep`/:func:`wait`
    (those park an OS thread the light process does not have); it yields
    instead.  Code that needs arbitrary blocking library calls belongs on
    the thread backend.
    """

    __slots__ = (
        "engine", "name", "daemon", "done", "result", "error",
        "_gen", "_finished", "_wait_event", "_span",
    )

    def __init__(self, engine: "Engine", gen, name: str, daemon: bool):
        self.engine = engine
        self.name = name
        self.daemon = daemon
        self.done = Event(engine, name=f"{name}.done")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._gen = gen
        self._finished = False
        self._wait_event: Optional[Event] = None
        self._span = None

    def _resume_action(self) -> None:
        """Heap action: drive the generator until it parks again.

        Each yield maps onto exactly the heap operations the thread
        backend would perform (see :func:`run_blocking`): a delay is one
        ``_schedule``, an untriggered event registers a waiter, a
        triggered event resumes inline with no heap traffic.
        """
        if self._finished:
            return
        engine = self.engine
        token_engine = getattr(_TLS, "engine", None)
        token_proc = getattr(_TLS, "process", None)
        prev_running = engine._running_process
        _TLS.engine = engine
        _TLS.process = self
        engine._running_process = self
        send_value: Any = None
        throw_exc: Optional[BaseException] = None
        event = self._wait_event
        if event is not None:
            self._wait_event = None
            if event.exception is not None:
                throw_exc = _failure_for_waiter(event.exception)
            else:
                send_value = event.value
        gen = self._gen
        try:
            while True:
                try:
                    if throw_exc is not None:
                        command = gen.throw(throw_exc)
                    else:
                        command = gen.send(send_value)
                except StopIteration as stop:
                    self._finish(stop.value, None)
                    return
                except BaseException as exc:  # noqa: BLE001 — recorded, re-raised
                    self._finish(None, exc)
                    if not self.daemon:
                        # Surface crashes immediately, like the thread
                        # backend's _resume_action does.
                        raise
                    return
                send_value = None
                throw_exc = None
                if isinstance(command, Event):
                    if command.engine is not engine:
                        throw_exc = SimulationError(
                            "event belongs to a different engine"
                        )
                    elif command.triggered:
                        if command.exception is not None:
                            throw_exc = _failure_for_waiter(command.exception)
                        else:
                            send_value = command.value
                    else:
                        command._add_waiter(self)
                        self._wait_event = command
                        return
                elif isinstance(command, (int, float)):
                    if command < 0:
                        throw_exc = SimulationError(
                            f"negative sleep: {command}"
                        )
                    else:
                        # _schedule(), inlined: delays are the hottest
                        # yield in fleet-size runs and the sign check
                        # already happened above.
                        engine._heap_pushes += 1
                        heapq.heappush(
                            engine._heap,
                            (
                                engine._now + command,
                                next(engine._seq),
                                self._resume_action,
                            ),
                        )
                        return
                else:
                    throw_exc = SimulationError(
                        f"light process {self.name!r} yielded {command!r}; "
                        "yield a delay in seconds or a sim.Event"
                    )
        finally:
            engine._running_process = prev_running
            _TLS.engine = token_engine
            _TLS.process = token_proc

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self._finished = True
        self.result = result
        self.error = error
        if not self.done.triggered:
            if error is not None:
                self.done.fail(error)
            else:
                self.done.succeed(result)
        if self._span is not None:
            self._span.finish()
            self._span = None

    def _kill(self) -> None:
        """Close the generator during engine shutdown."""
        self._finished = True
        self._gen.close()

    @property
    def alive(self) -> bool:
        return not self._finished


def run_blocking(gen) -> Any:
    """Drive a light-process generator with the thread-backed primitives.

    This is the bridge that lets process logic be written *once* as a
    generator and run on either backend: ``spawn(run_blocking, gen)``
    executes it on an OS thread (``yield delay`` → :func:`sleep`,
    ``yield event`` → :func:`wait`), while ``spawn_light`` dispatches the
    same generator inline.  Both paths perform identical heap operations,
    so schedules are bit-identical across backends.  Callable from any
    thread-backed process, including mid-stack in library code.
    """
    send_value: Any = None
    throw_exc: Optional[BaseException] = None
    while True:
        try:
            if throw_exc is not None:
                command = gen.throw(throw_exc)
            else:
                command = gen.send(send_value)
        except StopIteration as stop:
            return stop.value
        send_value = None
        throw_exc = None
        try:
            if isinstance(command, Event):
                send_value = wait(command)
            elif isinstance(command, (int, float)):
                if command < 0:
                    raise SimulationError(f"negative sleep: {command}")
                sleep(command)
            else:
                raise SimulationError(
                    f"light process yielded {command!r}; "
                    "yield a delay in seconds or a sim.Event"
                )
        except BaseException as exc:  # noqa: BLE001 — forwarded into the generator
            throw_exc = exc


class Engine:
    """The discrete-event scheduler."""

    def __init__(self, light_processes: bool = True) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._heap_pushes = 0
        self._seq = itertools.count()
        self._engine_turnstile = threading.Event()
        self._running_process = None  # Process | LightProcess
        self._processes: list = []  # Process | LightProcess
        self._local = _TLS
        self._closed = False
        # When False, spawn_light() falls back to a thread-backed process
        # driving the same generator via run_blocking — the measurement
        # baseline for the light backend's speedup, and an escape hatch
        # should an accounting divergence ever need bisecting.
        self._light_enabled = bool(light_processes)

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._heap_pushes += 1
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), action))

    # -- processes ---------------------------------------------------------

    def spawn(
        self,
        fn: Callable,
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> Process:
        """Create a process; it starts when the engine next runs."""
        if self._closed:
            raise SimulationError("engine is closed")
        proc = Process(
            self,
            self._wrap(fn),
            args,
            kwargs,
            name=name or getattr(fn, "__name__", "proc"),
            daemon=daemon,
        )
        self._processes.append(proc)
        self._schedule(0.0, proc._resume_action)
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant(
                "sim", "spawn", ts=self._now, track="engine",
                proc=proc.name, daemon=daemon,
            )
        return proc

    def spawn_light(
        self,
        genfn: Callable,
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> "Process | LightProcess":
        """Spawn a generator-backed process dispatched inline (no thread).

        ``genfn(*args, **kwargs)`` must return a generator speaking the
        light-process protocol (``yield seconds`` / ``yield event``).
        With ``Engine(light_processes=False)`` the same generator runs on
        a thread via :func:`run_blocking` instead; either way the heap
        operations — and therefore the schedule — are identical.
        """
        if self._closed:
            raise SimulationError("engine is closed")
        pname = name or getattr(genfn, "__name__", "proc")
        gen = genfn(*args, **kwargs)
        if not self._light_enabled:
            return self.spawn(run_blocking, gen, name=pname, daemon=daemon)
        proc = LightProcess(self, gen, name=pname, daemon=daemon)
        self._processes.append(proc)
        self._schedule(0.0, proc._resume_action)
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant(
                "sim", "spawn", ts=self._now, track="engine",
                proc=pname, daemon=daemon,
            )
            proc._span = tracer.span("sim", f"proc:{pname}")
        return proc

    def _wrap(self, fn: Callable) -> Callable:
        engine = self

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            token_engine = getattr(_TLS, "engine", None)
            token_proc = getattr(_TLS, "process", None)
            _TLS.engine = engine
            _TLS.process = engine._running_process
            tracer = _trace.TRACER
            span = None
            if tracer is not None:
                proc = _TLS.process
                span = tracer.span(
                    "sim", f"proc:{proc.name if proc is not None else 'proc'}"
                )
            try:
                return fn(*args, **kwargs)
            finally:
                if span is not None:
                    span.finish()
                _TLS.engine = token_engine
                _TLS.process = token_proc

        return wrapped

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drive events until the heap is empty (or ``until`` is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if non-daemon processes remain blocked with no events pending.
        """
        if self._closed:
            raise SimulationError("engine is closed")
        profiler = _trace.PROFILER
        sampler = _trace.SAMPLER
        if profiler is not None or sampler is not None:
            return self._run_observed(until, profiler, sampler)
        while self._heap:
            time, _, action = self._heap[0]
            if until is not None and time > until:
                # Clamp: an `until` earlier than the current time pauses
                # immediately, it must never move the clock backward.
                if until > self._now:
                    self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            action()
        return self._finish_run()

    def _run_observed(self, until, profiler, sampler) -> float:
        """The dispatch loop with profiling/sampling hooks.

        ``run()`` branches here only when an instrument is installed;
        the fast loop above is the unmodified original, so the disabled
        path carries zero added per-event work.  Neither hook advances
        the sim clock or consumes heap sequence numbers, so observed
        runs stay bit-identical to unobserved ones.
        """
        if sampler is not None:
            sampler.bind(self)
        heap = self._heap
        while heap:
            when, _, action = heap[0]
            if until is not None and when > until:
                # Same clamp as the fast loop: never rewind the clock.
                if until > self._now:
                    self._now = until
                return self._now
            heapq.heappop(heap)
            self._now = when
            if profiler is not None:
                pushes = self._heap_pushes
                start = _wall_ns()
                action()
                # Close the timing window before computing the site key:
                # argument order would otherwise charge site_name()'s
                # getattrs + regex into every event's wall time.
                elapsed = _wall_ns() - start
                profiler.record(
                    _site_name(action),
                    self._heap_pushes - pushes,
                    elapsed,
                )
            else:
                action()
            if sampler is not None and self._now >= sampler.next_due:
                sampler.sample(self._now)
        return self._finish_run()

    def _finish_run(self) -> float:
        blocked = [
            p.name for p in self._processes if p.alive and not p.daemon
        ]
        if blocked:
            raise DeadlockError(
                f"no events pending but processes blocked: {blocked}"
            )
        return self._now

    def close(self) -> None:
        """Kill every remaining process and reject further use."""
        if self._closed:
            return
        self._closed = True
        for proc in self._processes:
            if proc.alive:
                proc._kill()
        self._heap.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_TLS = threading.local()
# Let the tracer read the simulated clock without importing repro.sim
# (the dependency is inverted to keep repro.trace import-cycle free).
_trace._SIM_TLS = _TLS


def current_engine() -> Engine:
    """The engine driving the calling simulated process."""
    engine = getattr(_TLS, "engine", None)
    if engine is None:
        raise SimulationError("not inside a simulated process")
    return engine


def current_process() -> Process:
    """The simulated process executing the caller."""
    proc = getattr(_TLS, "process", None)
    if proc is None:
        raise SimulationError("not inside a simulated process")
    return proc


def now() -> float:
    """Current simulated time (valid inside a simulated process)."""
    return current_engine().now


def sleep(delay: float) -> None:
    """Advance this process's simulated time by ``delay``."""
    engine = current_engine()
    proc = current_process()
    if isinstance(proc, LightProcess):
        raise SimulationError(
            f"sleep() called inside light process {proc.name!r}; "
            "yield the delay instead"
        )
    if delay < 0:
        raise SimulationError(f"negative sleep: {delay}")
    engine._schedule(delay, proc._resume_action)
    proc._block_and_switch()


def wait(event: Event) -> Any:
    """Block until ``event`` triggers; returns its value.

    If the event failed, a per-waiter replica of its exception is raised
    here (in the waiter), chained to the original via ``__cause__`` —
    sharing one exception object across waiters would accrete every
    waiter's frames onto a single traceback.
    """
    engine = current_engine()
    proc = current_process()
    if isinstance(proc, LightProcess):
        raise SimulationError(
            f"wait() called inside light process {proc.name!r}; "
            "yield the event instead"
        )
    if event.engine is not engine:
        raise SimulationError("event belongs to a different engine")
    if not event.triggered:
        event._add_waiter(proc)
        proc._block_and_switch()
    if event.exception is not None:
        raise _failure_for_waiter(event.exception)
    return event.value
