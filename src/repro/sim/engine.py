"""The event loop, events, and thread-backed simulated processes.

Handoff protocol (the part that makes real library code runnable in
simulated time):

- every :class:`Process` owns a ``threading.Event`` turnstile; the engine
  owns one too;
- the engine pops the next (time, seq, action) off the heap, performs the
  action — usually "resume process P" — and, if a process was resumed,
  parks on its own turnstile until that process either blocks again or
  finishes;
- a process blocks by registering itself with an :class:`Event` /
  resource queue, releasing the engine turnstile, and parking on its own.

At most one thread is ever runnable, so shared state needs no locking and
execution order is completely determined by the heap.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from time import perf_counter_ns as _wall_ns
from typing import Any, Callable, Optional

from repro.errors import DeadlockError, SimulationError
from repro.telemetry.profiler import site_name as _site_name
from repro.trace import runtime as _trace


class ProcessKilled(BaseException):
    """Raised inside a process thread to unwind it during engine shutdown.

    Derives from :class:`BaseException` so ``except Exception`` blocks in
    library code under test cannot swallow it.
    """


class Event:
    """A one-shot occurrence processes can wait on.

    ``succeed(value)`` wakes all waiters (in registration order) at the
    current simulated time; ``fail(exc)`` wakes them with an exception.
    """

    __slots__ = ("engine", "triggered", "value", "exception", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: list[Process] = []
        self.name = name

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.engine._schedule(0.0, proc._resume_action)
        self._waiters.clear()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.exception = exception
        for proc in self._waiters:
            self.engine._schedule(0.0, proc._resume_action)
        self._waiters.clear()
        return self

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)


class Process:
    """A simulated process backed by a daemon thread."""

    def __init__(self, engine: "Engine", fn: Callable, args, kwargs, name: str,
                 daemon: bool):
        self.engine = engine
        self.name = name
        self.daemon = daemon
        self.done = Event(engine, name=f"{name}.done")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._resume = threading.Event()
        self._finished = False
        self._killed = False
        self._blocked = False
        self._thread = threading.Thread(
            target=self._bootstrap,
            args=(fn, args, kwargs),
            name=f"sim:{name}",
            daemon=True,
        )
        self._thread.start()

    # -- engine side -----------------------------------------------------

    def _resume_action(self) -> None:
        """Heap action: hand control to this process until it yields."""
        if self._finished:
            return
        self.engine._running_process = self
        self._blocked = False
        self._resume.set()
        self.engine._engine_turnstile.wait()
        self.engine._engine_turnstile.clear()
        self.engine._running_process = None
        if self.error is not None and not self.daemon:
            # Surface crashes immediately instead of deadlocking later.
            raise self.error

    # -- process side ----------------------------------------------------

    def _bootstrap(self, fn: Callable, args, kwargs) -> None:
        self._park()  # wait for the engine's first resume
        try:
            self.result = fn(*args, **kwargs)
        except ProcessKilled:
            pass
        except BaseException as exc:  # noqa: BLE001 — recorded, re-raised by engine
            self.error = exc
        finally:
            self._finished = True
            if not self._killed:
                if not self.done.triggered:
                    if self.error is not None:
                        self.done.fail(self.error)
                    else:
                        self.done.succeed(self.result)
            self.engine._engine_turnstile.set()

    def _park(self) -> None:
        """Block this process thread until the engine resumes it."""
        self._resume.wait()
        self._resume.clear()
        if self._killed:
            raise ProcessKilled()

    def _block_and_switch(self) -> None:
        """Yield control to the engine and park (process side)."""
        self._blocked = True
        self.engine._engine_turnstile.set()
        self._park()

    @property
    def alive(self) -> bool:
        return not self._finished


class Engine:
    """The discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._heap_pushes = 0
        self._seq = itertools.count()
        self._engine_turnstile = threading.Event()
        self._running_process: Optional[Process] = None
        self._processes: list[Process] = []
        self._local = _TLS
        self._closed = False

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def _schedule(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._heap_pushes += 1
        heapq.heappush(self._heap, (self._now + delay, next(self._seq), action))

    # -- processes ---------------------------------------------------------

    def spawn(
        self,
        fn: Callable,
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
        **kwargs: Any,
    ) -> Process:
        """Create a process; it starts when the engine next runs."""
        if self._closed:
            raise SimulationError("engine is closed")
        proc = Process(
            self,
            self._wrap(fn),
            args,
            kwargs,
            name=name or getattr(fn, "__name__", "proc"),
            daemon=daemon,
        )
        self._processes.append(proc)
        self._schedule(0.0, proc._resume_action)
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant(
                "sim", "spawn", ts=self._now, track="engine",
                proc=proc.name, daemon=daemon,
            )
        return proc

    def _wrap(self, fn: Callable) -> Callable:
        engine = self

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            token_engine = getattr(_TLS, "engine", None)
            token_proc = getattr(_TLS, "process", None)
            _TLS.engine = engine
            _TLS.process = engine._running_process
            tracer = _trace.TRACER
            span = None
            if tracer is not None:
                proc = _TLS.process
                span = tracer.span(
                    "sim", f"proc:{proc.name if proc is not None else 'proc'}"
                )
            try:
                return fn(*args, **kwargs)
            finally:
                if span is not None:
                    span.finish()
                _TLS.engine = token_engine
                _TLS.process = token_proc

        return wrapped

    # -- running -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drive events until the heap is empty (or ``until`` is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError`
        if non-daemon processes remain blocked with no events pending.
        """
        if self._closed:
            raise SimulationError("engine is closed")
        profiler = _trace.PROFILER
        sampler = _trace.SAMPLER
        if profiler is not None or sampler is not None:
            return self._run_observed(until, profiler, sampler)
        while self._heap:
            time, _, action = self._heap[0]
            if until is not None and time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = time
            action()
        return self._finish_run()

    def _run_observed(self, until, profiler, sampler) -> float:
        """The dispatch loop with profiling/sampling hooks.

        ``run()`` branches here only when an instrument is installed;
        the fast loop above is the unmodified original, so the disabled
        path carries zero added per-event work.  Neither hook advances
        the sim clock or consumes heap sequence numbers, so observed
        runs stay bit-identical to unobserved ones.
        """
        if sampler is not None:
            sampler.bind(self)
        heap = self._heap
        while heap:
            when, _, action = heap[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(heap)
            self._now = when
            if profiler is not None:
                pushes = self._heap_pushes
                start = _wall_ns()
                action()
                profiler.record(
                    _site_name(action),
                    self._heap_pushes - pushes,
                    _wall_ns() - start,
                )
            else:
                action()
            if sampler is not None and self._now >= sampler.next_due:
                sampler.sample(self._now)
        return self._finish_run()

    def _finish_run(self) -> float:
        blocked = [
            p.name for p in self._processes if p.alive and not p.daemon
        ]
        if blocked:
            raise DeadlockError(
                f"no events pending but processes blocked: {blocked}"
            )
        return self._now

    def close(self) -> None:
        """Kill every remaining process thread and reject further use."""
        if self._closed:
            return
        self._closed = True
        for proc in self._processes:
            if proc.alive:
                proc._killed = True
                proc._resume.set()
                proc._thread.join(timeout=5)
        self._heap.clear()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


_TLS = threading.local()
# Let the tracer read the simulated clock without importing repro.sim
# (the dependency is inverted to keep repro.trace import-cycle free).
_trace._SIM_TLS = _TLS


def current_engine() -> Engine:
    """The engine driving the calling simulated process."""
    engine = getattr(_TLS, "engine", None)
    if engine is None:
        raise SimulationError("not inside a simulated process")
    return engine


def current_process() -> Process:
    """The simulated process executing the caller."""
    proc = getattr(_TLS, "process", None)
    if proc is None:
        raise SimulationError("not inside a simulated process")
    return proc


def now() -> float:
    """Current simulated time (valid inside a simulated process)."""
    return current_engine().now


def sleep(delay: float) -> None:
    """Advance this process's simulated time by ``delay``."""
    engine = current_engine()
    proc = current_process()
    if delay < 0:
        raise SimulationError(f"negative sleep: {delay}")
    engine._schedule(delay, proc._resume_action)
    proc._block_and_switch()


def wait(event: Event) -> Any:
    """Block until ``event`` triggers; returns its value.

    If the event failed, its exception is raised here (in the waiter).
    """
    engine = current_engine()
    proc = current_process()
    if event.engine is not engine:
        raise SimulationError("event belongs to a different engine")
    if not event.triggered:
        event._add_waiter(proc)
        proc._block_and_switch()
    if event.exception is not None:
        raise event.exception
    return event.value
