"""A deterministic discrete-event simulation kernel with two process types.

The substrate that lets the paper's cluster experiments execute the *real*
LSMIO/LSM-engine code under a simulated clock.  Thread-backed processes
(:class:`Process`) run arbitrary Python — including the genuine
storage-engine code path — with **exactly one thread runnable at a time**:
the engine hands control to a process, the process runs until it calls a
blocking primitive (:func:`sleep`, :func:`wait`, resource acquisition),
then control returns to the engine, which advances simulated time to the
next event.  Generator-backed light processes (:class:`LightProcess`,
spawned via :meth:`Engine.spawn_light`) express the same blocking points
as ``yield`` statements and are dispatched inline with no thread handoff —
the backend for fleet-size fan-out.  Scheduling order is a strict
(time, sequence) heap either way, so runs are bit-reproducible.

Python CPU time never advances the clock — only modeled costs (disk
service, network transfer, explicit :func:`sleep`) do, which is what makes
a pure-Python reproduction of an I/O paper meaningful.

Usage::

    from repro import sim

    engine = sim.Engine()

    def worker(tag):
        sim.sleep(1.5)
        return f"{tag} done at {sim.now()}"

    proc = engine.spawn(worker, "w0")
    engine.run()
    assert proc.result == "w0 done at 1.5"
"""

from repro.sim.engine import (
    Engine,
    Event,
    LightProcess,
    Process,
    ProcessKilled,
    current_engine,
    current_process,
    now,
    run_blocking,
    sleep,
    wait,
)
from repro.sim.resources import Resource, Store

__all__ = [
    "Engine",
    "Event",
    "LightProcess",
    "Process",
    "ProcessKilled",
    "Resource",
    "Store",
    "current_engine",
    "current_process",
    "now",
    "run_blocking",
    "sleep",
    "wait",
]
