"""Shared simulated resources: FCFS capacity slots and message stores.

Because at most one simulated process ever runs at a time, these need no
locking; correctness comes from the engine's deterministic event order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine, Event, wait


class Resource:
    """``capacity`` interchangeable slots granted in FCFS order.

    The canonical usage is a disk or network pipe::

        with resource.request():
            sim.sleep(service_time)
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()

    def acquire(self) -> None:
        """Block until a slot is free, then take it."""
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            return
        gate = Event(self.engine, name=f"{self.name}.acquire")
        self._queue.append(gate)
        wait(gate)
        # The releaser transferred its slot to us (kept _in_use high).

    def acquire_lw(self):
        """Light-process twin of :meth:`acquire` (``yield from`` it).

        Performs the same queue/slot operations, parking via ``yield``
        instead of :func:`wait`, so both backends replay one schedule.
        """
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            return
        gate = Event(self.engine, name=f"{self.name}.acquire")
        self._queue.append(gate)
        yield gate
        # The releaser transferred its slot to us (kept _in_use high).

    def release(self) -> None:
        """Free a slot, waking the longest-waiting acquirer."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            # Hand the slot directly to the next waiter (FCFS, no gap).
            self._queue.popleft().succeed()
        else:
            self._in_use -= 1

    def request(self) -> "_ResourceContext":
        """Context manager form of acquire/release."""
        return _ResourceContext(self)

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class _ResourceContext:
    __slots__ = ("_resource",)

    def __init__(self, resource: Resource):
        self._resource = resource

    def __enter__(self) -> Resource:
        self._resource.acquire()
        return self._resource

    def __exit__(self, *exc) -> None:
        self._resource.release()


class Store:
    """An unbounded FIFO of items with blocking ``get`` (a mailbox).

    The MPI layer builds point-to-point messaging on one Store per
    (destination, tag) channel.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Any:
        """Take the oldest item, blocking while the store is empty."""
        if self._items:
            return self._items.popleft()
        gate = Event(self.engine, name=f"{self.name}.get")
        self._getters.append(gate)
        return wait(gate)

    def get_lw(self):
        """Light-process twin of :meth:`get` (``yield from`` it)."""
        if self._items:
            return self._items.popleft()
        gate = Event(self.engine, name=f"{self.name}.get")
        self._getters.append(gate)
        return (yield gate)

    def try_get(self) -> Optional[Any]:
        """Non-blocking take; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)
