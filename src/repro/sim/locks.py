"""Locks that are safe to hold across simulated-time operations.

A plain ``threading.Lock`` deadlocks the discrete-event engine: if a sim
process parks (yields to the engine) while holding it, and the engine
then resumes another process that tries to acquire it, that second thread
blocks *outside* engine control and the handoff protocol never completes.

:class:`AdaptiveRLock` solves this for code shared between the real world
and the simulation (the storage engine): inside a sim process it behaves
as a re-entrant lock whose waiters block on sim events (the engine keeps
scheduling); outside it delegates to a genuine ``threading.RLock``.
"""

from __future__ import annotations

import threading
from collections import deque
from repro.errors import SimulationError


def _current_sim_process():
    from repro.sim.engine import _TLS

    return getattr(_TLS, "process", None)


class AdaptiveEvent:
    """One-shot wakeup usable from sim processes and real threads alike.

    The waiting side picks the flavour at :meth:`wait` time (sim event vs
    ``threading.Event``); a :meth:`set` that lands before the wait is not
    lost.  Used by the group-commit writer queue, where a follower parks
    until its leader either commits the merged group or hands leadership
    over.  Like :class:`AdaptiveRLock`, one instance must not be shared
    between a sim world and real threads concurrently.
    """

    __slots__ = ("_set", "_real", "_sim_gate")

    def __init__(self) -> None:
        self._set = False
        self._real = None
        self._sim_gate = None

    def set(self) -> None:
        self._set = True
        real = self._real
        if real is not None:
            real.set()
        gate = self._sim_gate
        if gate is not None:
            gate.succeed()

    def wait(self) -> None:
        if self._set:
            return
        proc = _current_sim_process()
        if proc is None:
            self._real = threading.Event()
            # Re-check after publishing the event: a setter that missed
            # the publish saw _set first, so one of the two sides wins.
            if self._set:
                return
            self._real.wait()
            return
        from repro import sim

        self._sim_gate = sim.Event(proc.engine, name="adaptive-event")
        if self._set:
            return
        sim.wait(self._sim_gate)


class AdaptiveRLock:
    """Re-entrant lock usable from sim processes and real threads alike.

    A single instance must not be shared between a sim world and real
    threads concurrently — the storage engine lives entirely in one or
    the other for its lifetime, which is the supported usage.
    """

    def __init__(self) -> None:
        self._real = threading.RLock()
        self._sim_owner = None
        self._sim_count = 0
        self._sim_waiters: deque = deque()

    def acquire(self) -> bool:
        proc = _current_sim_process()
        if proc is None:
            self._real.acquire()
            return True
        if self._sim_owner is proc:
            self._sim_count += 1
            return True
        if self._sim_owner is None and not self._sim_waiters:
            self._sim_owner = proc
            self._sim_count = 1
            return True
        from repro import sim

        gate = sim.Event(proc.engine, name="adaptive-rlock")
        self._sim_waiters.append((proc, gate))
        sim.wait(gate)
        # The releaser handed ownership to us before triggering the gate.
        if self._sim_owner is not proc:
            raise SimulationError("lock handoff failed")
        return True

    def release(self) -> None:
        proc = _current_sim_process()
        if proc is None:
            self._real.release()
            return
        if self._sim_owner is not proc:
            raise SimulationError("release of a lock not held by this process")
        self._sim_count -= 1
        if self._sim_count:
            return
        if self._sim_waiters:
            next_proc, gate = self._sim_waiters.popleft()
            self._sim_owner = next_proc
            self._sim_count = 1
            gate.succeed()
        else:
            self._sim_owner = None

    def __enter__(self) -> "AdaptiveRLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
