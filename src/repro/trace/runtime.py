"""Global tracing hooks — safe to import from the hottest layers.

This module must not import anything else from ``repro``: the sim
engine, PFS client, LSM engine, MPI communicator, and LSMIO manager all
import it at module scope and gate their instrumentation on
``TRACER is not None`` — one module-global read plus an identity check
when tracing is off, with no allocation on the disabled path.

The simulated-clock hookup is inverted to keep the import graph acyclic:
:mod:`repro.sim.engine` registers its thread-local state here
(:data:`_SIM_TLS`) when it is imported, so :func:`ambient_clock` and
:func:`current_track` can resolve simulated time and the running process
without this package ever importing the simulator.
"""

from __future__ import annotations

import threading
import time

#: the installed :class:`~repro.trace.tracer.Tracer`, or None (disabled)
TRACER = None

#: the installed :class:`~repro.trace.metrics.MetricsRegistry`, or None
METRICS = None

#: the installed :class:`~repro.telemetry.Telemetry` (always-on
#: histograms + gauge sources), or None — hot paths gate on the same
#: one-global-read-plus-identity-check pattern as TRACER
TELEMETRY = None

#: the installed :class:`~repro.telemetry.sampler.GaugeSampler`, or None;
#: read by the sim engine's dispatch loop (hoisted once per ``run()``)
SAMPLER = None

#: the installed :class:`~repro.telemetry.profiler.EngineProfiler`, or
#: None; read by the sim engine's dispatch loop (hoisted once per
#: ``run()``), so the disabled path adds zero per-event work
PROFILER = None

#: thread-local of the discrete-event engine (set by repro.sim.engine)
_SIM_TLS = None


def ambient_clock() -> float:
    """Simulated time inside a sim process, else monotonic wall seconds.

    The same clock policy as :func:`repro.core.counters.ambient_clock`,
    re-implemented here so the trace package has no ``repro`` imports.
    """
    tls = _SIM_TLS
    engine = getattr(tls, "engine", None) if tls is not None else None
    if engine is None:
        return time.monotonic()
    return engine._now


def current_track() -> str:
    """Name of the executing context: sim process name or thread name."""
    tls = _SIM_TLS
    proc = getattr(tls, "process", None) if tls is not None else None
    if proc is not None:
        return proc.name
    return threading.current_thread().name


class _NullSpan:
    """Shared no-op span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass


#: the singleton returned wherever tracing is off
NULL_SPAN = _NullSpan()


def span(category: str, name: str, **args):
    """Convenience: open a span on the installed tracer, or no-op.

    Library hot paths check ``TRACER is not None`` themselves (the
    keyword arguments here allocate even when disabled); this helper is
    for user code and cold paths.
    """
    tracer = TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(category, name, **args)
