"""Chrome-trace/Perfetto export and schema validation.

The raw dump (``Tracer.to_payload``) keeps seconds on the simulated
clock; the exported form is the Chrome Trace Event JSON object format —
``{"traceEvents": [...]}`` with microsecond timestamps — which both
``chrome://tracing`` and https://ui.perfetto.dev open directly.

Event mapping: spans → ``"X"`` complete events, instants → ``"i"``,
gauges → ``"C"`` counter events, plus ``"M"`` metadata events naming
each track (one tid per simulated process / thread).
"""

from __future__ import annotations

import json
from typing import Union

_PID = 0


def to_chrome_trace(payload_or_tracer: Union[dict, object]) -> dict:
    """Convert a raw dump (or a live Tracer) to Chrome trace JSON."""
    payload = payload_or_tracer
    if not isinstance(payload, dict):
        payload = payload.to_payload()
    events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = tids[track] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    for span in payload.get("spans", ()):
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid_for(span.get("track", "main")),
                "cat": span["cat"],
                "name": span["name"],
                "ts": span["ts"] * 1e6,
                "dur": span["dur"] * 1e6,
                "args": dict(span.get("args", {})),
            }
        )
    for instant in payload.get("instants", ()):
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": tid_for(instant.get("track", "main")),
                "cat": instant["cat"],
                "name": instant["name"],
                "ts": instant["ts"] * 1e6,
                "args": dict(instant.get("args", {})),
            }
        )
    for gauge in payload.get("gauges", ()):
        events.append(
            {
                "ph": "C",
                "pid": _PID,
                "tid": 0,
                "cat": gauge["cat"],
                "name": gauge["name"],
                "ts": gauge["ts"] * 1e6,
                "args": {"value": gauge["value"]},
            }
        )
    # Stable presentation order: metadata first, then by timestamp.
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    out = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.trace",
            "clock": "simulated-seconds-as-us",
            "meta": dict(payload.get("meta", {})),
            "metrics": dict(payload.get("metrics", {})),
            "dropped": payload.get("dropped", 0),
        },
    }
    return out


_VALID_PHASES = {"X", "i", "I", "C", "M", "B", "E"}


def validate_chrome_trace(obj: dict) -> None:
    """Schema-check a Chrome trace object; raises ValueError on problems.

    Checks the subset of the Trace Event Format this exporter emits plus
    the invariants Perfetto's importer cares about (numeric non-negative
    timestamps/durations, integer pid/tid, named events).
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        raise ValueError(f"trace must be a JSON object, got {type(obj)}")
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace has no traceEvents list")
    for index, event in enumerate(events):
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid must be an int")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
            if not isinstance(event.get("cat"), str):
                problems.append(f"{where}: X event needs a cat string")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    if problems:
        raise ValueError(
            "invalid Chrome trace:\n  " + "\n  ".join(problems)
        )


def _chrome_to_payload(obj: dict) -> dict:
    """Best-effort inverse mapping so the CLI can read exported files."""
    tracks = {
        event["tid"]: event.get("args", {}).get("name", f"tid{event['tid']}")
        for event in obj.get("traceEvents", ())
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    spans, instants, gauges = [], [], []
    for event in obj.get("traceEvents", ()):
        phase = event.get("ph")
        track = tracks.get(event.get("tid"), f"tid{event.get('tid', 0)}")
        if phase == "X":
            spans.append(
                {
                    "cat": event.get("cat", ""),
                    "name": event["name"],
                    "ts": event["ts"] / 1e6,
                    "dur": event.get("dur", 0.0) / 1e6,
                    "track": track,
                    "depth": 0,
                    "args": dict(event.get("args", {})),
                }
            )
        elif phase in ("i", "I"):
            instants.append(
                {
                    "cat": event.get("cat", ""),
                    "name": event["name"],
                    "ts": event["ts"] / 1e6,
                    "track": track,
                    "args": dict(event.get("args", {})),
                }
            )
        elif phase == "C":
            gauges.append(
                {
                    "cat": event.get("cat", ""),
                    "name": event["name"],
                    "ts": event["ts"] / 1e6,
                    "value": event.get("args", {}).get("value"),
                }
            )
    other = obj.get("otherData", {})
    return {
        "format": "repro-trace",
        "version": 1,
        "meta": dict(other.get("meta", {})),
        "spans": spans,
        "instants": instants,
        "gauges": gauges,
        "dropped": other.get("dropped", 0),
        "metrics": dict(other.get("metrics", {})),
    }


def load_payload(path: str) -> dict:
    """Load a trace file — raw dump or exported Chrome form — as a payload."""
    with open(path) as fh:
        obj = json.load(fh)
    if isinstance(obj, dict) and obj.get("format") == "repro-trace":
        return obj
    if isinstance(obj, dict) and "traceEvents" in obj:
        return _chrome_to_payload(obj)
    raise ValueError(f"{path}: not a repro-trace dump or Chrome trace")


def write_payload(payload: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh)


def write_chrome_trace(payload_or_tracer, path: str) -> dict:
    """Export to ``path``; validates before writing.  Returns the object."""
    obj = to_chrome_trace(payload_or_tracer)
    validate_chrome_trace(obj)
    with open(path, "w") as fh:
        json.dump(obj, fh)
    return obj
