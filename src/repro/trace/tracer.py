"""Span recording on the ambient (simulated or wall) clock.

A :class:`Tracer` collects three event kinds:

- **spans** — intervals with a category (the instrumented layer: ``sim``,
  ``pfs``, ``lsm``, ``mpi``, ``core``, ``bench``), a name, per-track
  nesting depth, and free-form args;
- **instants** — point events (RPC retries, memtable freezes, forwards);
- **gauges** — (time, name, value) samples (queue depths).

Spans nest per *track* (one track per simulated process or OS thread),
mirroring how the discrete-event engine interleaves work: at most one
thread runs at a time, so each track's stack is only touched by its own
thread and recording needs no locking beyond the GIL's atomic appends.

Recording never advances simulated time and never touches any RNG, so an
instrumented run is bit-identical to an uninstrumented one — the same
guarantee the fault subsystem upholds (DESIGN.md).
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.trace import runtime

#: default cap on stored events — a runaway trace degrades to counting
#: drops instead of exhausting memory.
DEFAULT_MAX_EVENTS = 2_000_000


class Span:
    """One recorded interval.  Usable as a context manager."""

    __slots__ = (
        "tracer", "category", "name", "start", "end", "track", "depth",
        "args", "wall_start", "wall_end",
    )

    def __init__(
        self,
        tracer: "Tracer",
        category: str,
        name: str,
        start: float,
        track: str,
        depth: int,
        args: dict,
        wall_start: Optional[float] = None,
    ):
        self.tracer = tracer
        self.category = category
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.track = track
        self.depth = depth
        self.args = args
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **args) -> "Span":
        """Attach (or update) args after the span opened."""
        self.args.update(args)
        return self

    def finish(self) -> None:
        self.tracer._finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def to_dict(self) -> dict:
        out = {
            "cat": self.category,
            "name": self.name,
            "ts": self.start,
            "dur": self.duration,
            "track": self.track,
            "depth": self.depth,
        }
        if self.args:
            out["args"] = self.args
        if self.wall_start is not None and self.wall_end is not None:
            out["wall_ts"] = self.wall_start
            out["wall_dur"] = self.wall_end - self.wall_start
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.category}/{self.name} ts={self.start:.6f} "
            f"dur={self.duration:.6f} track={self.track!r})"
        )


class Tracer:
    """Records spans/instants/gauges; install via :func:`repro.trace.install`."""

    def __init__(
        self,
        enabled: bool = True,
        wall_clock: bool = False,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        self.enabled = enabled
        self.wall_clock = wall_clock
        self.spans: list[Span] = []
        self.instants: list[dict] = []
        self.gauges: list[dict] = []
        self.dropped = 0
        self._max_events = max_events
        self._stacks = threading.local()

    # -- recording --------------------------------------------------------

    def span(self, category: str, name: str, **args) -> "Span | runtime._NullSpan":
        """Open a span at the current ambient time on the caller's track."""
        if not self.enabled:
            return runtime.NULL_SPAN
        now = runtime.ambient_clock()
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        span = Span(
            self,
            category,
            name,
            now,
            runtime.current_track(),
            len(stack),
            args,
            wall_start=time.monotonic() if self.wall_clock else None,
        )
        stack.append(span)
        return span

    def _finish_span(self, span: Span) -> None:
        span.end = runtime.ambient_clock()
        if self.wall_clock:
            span.wall_end = time.monotonic()
        stack = getattr(self._stacks, "stack", None)
        if stack and span in stack:
            # Pop through to the span (tolerates a leaked inner span).
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if self._room():
            self.spans.append(span)
        else:
            self.dropped += 1

    def instant(
        self,
        category: str,
        name: str,
        ts: Optional[float] = None,
        track: Optional[str] = None,
        **args,
    ) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        event = {
            "cat": category,
            "name": name,
            "ts": runtime.ambient_clock() if ts is None else ts,
            "track": runtime.current_track() if track is None else track,
        }
        if args:
            event["args"] = args
        if self._room():
            self.instants.append(event)
        else:
            self.dropped += 1

    def gauge(
        self,
        category: str,
        name: str,
        value: float,
        ts: Optional[float] = None,
    ) -> None:
        """Record one sample of a named gauge (e.g. a queue depth).

        ``ts`` overrides the ambient clock — the gauge sampler runs on
        the engine loop thread (not inside a sim process) and stamps the
        simulated grid time explicitly.
        """
        if not self.enabled:
            return
        if self._room():
            self.gauges.append(
                {
                    "cat": category,
                    "name": name,
                    "ts": runtime.ambient_clock() if ts is None else ts,
                    "value": value,
                }
            )
        else:
            self.dropped += 1

    def _room(self) -> bool:
        return (
            len(self.spans) + len(self.instants) + len(self.gauges)
            < self._max_events
        )

    # -- inspection -------------------------------------------------------

    def categories(self) -> list[str]:
        """Sorted distinct span categories recorded so far."""
        return sorted({span.category for span in self.spans})

    def to_payload(
        self, metrics: Optional[dict] = None, meta: Optional[dict] = None
    ) -> dict:
        """The raw-dump form consumed by ``python -m repro.trace``."""
        return {
            "format": "repro-trace",
            "version": 1,
            "meta": dict(meta or {}),
            "spans": [
                span.to_dict() for span in self.spans if span.end is not None
            ],
            "instants": list(self.instants),
            "gauges": list(self.gauges),
            "dropped": self.dropped,
            "metrics": dict(metrics or {}),
        }

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.gauges.clear()
        self.dropped = 0
