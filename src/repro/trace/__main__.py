"""CLI: inspect and export checkpoint-timeline traces.

Usage::

    python -m repro.trace summarize  TRACE.json
    python -m repro.trace top-spans  TRACE.json [-n 15]
    python -m repro.trace stalls     TRACE.json [--json]
    python -m repro.trace export     TRACE.json -o OUT.chrome.json
    python -m repro.trace validate   OUT.chrome.json
    python -m repro.trace profile    [--check] [-n 15]

``TRACE.json`` is a raw dump written by a ``--trace`` benchmark run (or
an already-exported Chrome trace — both forms are accepted).  ``export``
writes the Chrome Trace Event form that chrome://tracing and Perfetto
open; it always schema-validates before writing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.trace.export import (
    load_payload,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.trace.summary import (
    format_stalls,
    stalls_report,
    summarize,
    top_spans,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect/export repro.trace checkpoint-timeline dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-layer/per-span rollup")
    p_sum.add_argument("trace", help="trace file (raw dump or Chrome form)")

    p_top = sub.add_parser("top-spans", help="longest spans")
    p_top.add_argument("trace")
    p_top.add_argument("-n", type=int, default=15, help="how many (15)")

    p_stall = sub.add_parser(
        "stalls",
        help="write-stall windows (commit_stall/slowdown/stop spans)",
    )
    p_stall.add_argument("trace")
    p_stall.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON (for the stability benchmark/CI)",
    )

    p_exp = sub.add_parser(
        "export", help="convert a raw dump to Chrome trace JSON"
    )
    p_exp.add_argument("trace")
    p_exp.add_argument(
        "-o", "--out", required=True, help="output Chrome-trace path"
    )

    p_val = sub.add_parser(
        "validate", help="schema-check a Chrome trace file"
    )
    p_val.add_argument("trace")

    p_prof = sub.add_parser(
        "profile",
        help="wall-clock self-profile of the discrete-event engine "
             "(per-callback-site attribution on a seeded fig5 point)",
    )
    p_prof.add_argument(
        "-n", type=int, default=0, metavar="SITES",
        help="show only the top N sites by wall time (0 = all)",
    )
    p_prof.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless sites were attributed and the "
             "disabled-mode overhead is within budget (for CI)",
    )
    p_prof.add_argument(
        "--overhead-budget", type=float, default=2.0, metavar="PCT",
        help="max tolerated disabled-mode wall-clock overhead in %% "
             "for --check (default 2.0)",
    )

    args = parser.parse_args(argv)

    if args.command == "profile":
        return _profile(args)

    if args.command == "validate":
        with open(args.trace) as fh:
            obj = json.load(fh)
        try:
            validate_chrome_trace(obj)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(
            f"{args.trace}: valid Chrome trace "
            f"({len(obj['traceEvents'])} events)"
        )
        return 0

    payload = load_payload(args.trace)
    if args.command == "summarize":
        print(summarize(payload))
    elif args.command == "top-spans":
        print(top_spans(payload, args.n))
    elif args.command == "stalls":
        if args.json:
            print(json.dumps(stalls_report(payload), sort_keys=True))
        else:
            print(format_stalls(payload))
    elif args.command == "export":
        obj = to_chrome_trace(payload)
        validate_chrome_trace(obj)
        with open(args.out, "w") as fh:
            json.dump(obj, fh)
        print(
            f"wrote {args.out} ({len(obj['traceEvents'])} events); open in "
            f"chrome://tracing or https://ui.perfetto.dev"
        )
    return 0


def _profile(args) -> int:
    """Run a seeded fig5 point under the engine self-profiler.

    Prints the per-callback-site table (events, heap pushes, wall time)
    and a measured overhead summary.  The disabled-mode figure is the
    cost of the only always-on hook the profiler adds to the engine —
    one integer increment per heap push — measured directly and scaled
    by the run's actual push count; everything else is behind a
    falls-through-when-None branch taken once per ``run()``.
    """
    from time import perf_counter_ns

    from repro import telemetry
    from repro.bench.figures import FIGURES

    def seeded_point():
        return FIGURES["fig5"](
            node_counts=(4,), bytes_per_task=2 << 20, repetitions=1
        )

    # Warm-up (imports, code objects), then time disabled runs.
    seeded_point()
    disabled_ns = []
    for _ in range(3):
        start = perf_counter_ns()
        seeded_point()
        disabled_ns.append(perf_counter_ns() - start)
    disabled = min(disabled_ns)

    # Profiled run: table + enabled-mode cost.
    profiler = telemetry.EngineProfiler()
    telemetry.install(profiler=profiler)
    try:
        start = perf_counter_ns()
        seeded_point()
        enabled = perf_counter_ns() - start
    finally:
        telemetry.uninstall()

    snap = profiler.snapshot()
    rows = snap["sites"]
    pushes = snap["heap_pushes"]
    # Cost of the always-on per-push increment, measured in place.
    loops = 1_000_000
    counter = 0
    start = perf_counter_ns()
    for _ in range(loops):
        counter += 1
    per_increment = (perf_counter_ns() - start) / loops
    disabled_overhead = 100.0 * pushes * per_increment / disabled
    enabled_overhead = 100.0 * (enabled - disabled) / disabled

    print(profiler.table(limit=args.n))
    print()
    print(
        f"baseline (telemetry disabled): {disabled / 1e6:9.1f} ms "
        f"(min of {len(disabled_ns)})"
    )
    print(f"profiled run:                  {enabled / 1e6:9.1f} ms "
          f"({enabled_overhead:+.1f}%)")
    print(
        f"disabled-mode overhead: {pushes:,} heap pushes × "
        f"{per_increment:.1f} ns/increment = "
        f"{disabled_overhead:.3f}% of baseline"
    )

    if args.check:
        problems = []
        if not rows:
            problems.append("no callback sites attributed")
        if disabled_overhead > args.overhead_budget:
            problems.append(
                f"disabled-mode overhead {disabled_overhead:.3f}% "
                f"exceeds budget {args.overhead_budget}%"
            )
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"CHECK OK: {len(rows)} sites, disabled overhead "
            f"{disabled_overhead:.3f}% <= {args.overhead_budget}%"
        )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
