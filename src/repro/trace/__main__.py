"""CLI: inspect and export checkpoint-timeline traces.

Usage::

    python -m repro.trace summarize  TRACE.json
    python -m repro.trace top-spans  TRACE.json [-n 15]
    python -m repro.trace stalls     TRACE.json [--json]
    python -m repro.trace export     TRACE.json -o OUT.chrome.json
    python -m repro.trace validate   OUT.chrome.json

``TRACE.json`` is a raw dump written by a ``--trace`` benchmark run (or
an already-exported Chrome trace — both forms are accepted).  ``export``
writes the Chrome Trace Event form that chrome://tracing and Perfetto
open; it always schema-validates before writing.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.trace.export import (
    load_payload,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.trace.summary import (
    format_stalls,
    stalls_report,
    summarize,
    top_spans,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Inspect/export repro.trace checkpoint-timeline dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-layer/per-span rollup")
    p_sum.add_argument("trace", help="trace file (raw dump or Chrome form)")

    p_top = sub.add_parser("top-spans", help="longest spans")
    p_top.add_argument("trace")
    p_top.add_argument("-n", type=int, default=15, help="how many (15)")

    p_stall = sub.add_parser(
        "stalls",
        help="write-stall windows (commit_stall/slowdown/stop spans)",
    )
    p_stall.add_argument("trace")
    p_stall.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON (for the stability benchmark/CI)",
    )

    p_exp = sub.add_parser(
        "export", help="convert a raw dump to Chrome trace JSON"
    )
    p_exp.add_argument("trace")
    p_exp.add_argument(
        "-o", "--out", required=True, help="output Chrome-trace path"
    )

    p_val = sub.add_parser(
        "validate", help="schema-check a Chrome trace file"
    )
    p_val.add_argument("trace")

    args = parser.parse_args(argv)

    if args.command == "validate":
        with open(args.trace) as fh:
            obj = json.load(fh)
        try:
            validate_chrome_trace(obj)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(
            f"{args.trace}: valid Chrome trace "
            f"({len(obj['traceEvents'])} events)"
        )
        return 0

    payload = load_payload(args.trace)
    if args.command == "summarize":
        print(summarize(payload))
    elif args.command == "top-spans":
        print(top_spans(payload, args.n))
    elif args.command == "stalls":
        if args.json:
            print(json.dumps(stalls_report(payload), sort_keys=True))
        else:
            print(format_stalls(payload))
    elif args.command == "export":
        obj = to_chrome_trace(payload)
        validate_chrome_trace(obj)
        with open(args.out, "w") as fh:
            json.dump(obj, fh)
        print(
            f"wrote {args.out} ({len(obj['traceEvents'])} events); open in "
            f"chrome://tracing or https://ui.perfetto.dev"
        )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... | head`
        sys.exit(0)
