"""The unified metrics registry.

The repro has three pre-existing stat surfaces that could not be read
through one API: :class:`~repro.core.counters.PerfCounters` (manager
operation counters), :class:`~repro.pfs.client.ClientStats` plus the
per-server ``OstStats``/``OssStats``/``MdsStats`` dataclasses (the PFS
side), and :class:`~repro.lsm.db.DBStats` (the engine).  A
:class:`MetricsRegistry` federates any number of such sources behind one
namespaced snapshot: ``registry.snapshot()`` returns a flat
``{"namespace.counter": value}`` dict.

Sources are duck-typed — anything with a ``snapshot()`` method, any
dataclass instance, a plain dict, or a zero-argument callable returning
a dict.  Instrumented constructors self-register when a registry is
installed globally (``repro.trace.install``); see DESIGN.md for the
namespace map.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Union

Source = Union[object, dict, Callable[[], dict]]


def _snap(source: Source) -> dict:
    """Snapshot one source into a plain dict."""
    snapshot = getattr(source, "snapshot", None)
    if callable(snapshot):
        return dict(snapshot())
    if dataclasses.is_dataclass(source) and not isinstance(source, type):
        return dataclasses.asdict(source)
    if isinstance(source, dict):
        return dict(source)
    if callable(source):
        return dict(source())
    raise TypeError(
        f"metrics source must expose snapshot(), be a dataclass, a dict, "
        f"or a callable; got {type(source)}"
    )


def _flatten(namespace: str, data: dict, out: dict) -> None:
    for key, value in data.items():
        name = f"{namespace}.{key}"
        if isinstance(value, dict):
            _flatten(name, value, out)
        else:
            out[name] = value


class MetricsRegistry:
    """Federated, namespaced view over every registered counter object."""

    def __init__(self) -> None:
        self._sources: dict[str, Source] = {}
        self._lock = threading.Lock()

    def register(self, namespace: str, source: Source) -> None:
        """Attach ``source`` under ``namespace`` (replacing any previous)."""
        _snap(source)  # validate the shape up front, not at snapshot time
        with self._lock:
            self._sources[namespace] = source

    def unregister(self, namespace: str) -> None:
        with self._lock:
            self._sources.pop(namespace, None)

    def namespaces(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def snapshot(self, prefix: str = "") -> dict:
        """Flat ``{"namespace.counter": value}`` over matching namespaces."""
        with self._lock:
            sources = [
                (namespace, source)
                for namespace, source in self._sources.items()
                if namespace.startswith(prefix)
            ]
        out: dict = {}
        for namespace, source in sorted(sources):
            _flatten(namespace, _snap(source), out)
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._sources)

    def __contains__(self, namespace: str) -> bool:
        with self._lock:
            return namespace in self._sources
