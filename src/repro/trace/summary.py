"""Text rollups over trace payloads (the CLI's summarize / top-spans)."""

from __future__ import annotations

from collections import defaultdict


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:9.3f}s "
    if value >= 1e-3:
        return f"{value * 1e3:9.3f}ms"
    return f"{value * 1e6:9.3f}us"


def summarize(payload: dict) -> str:
    """Per-layer and per-span rollup of one trace payload.

    Span times overlap (spans nest), so the Σdur column is inclusive
    time, not a partition of the run.
    """
    spans = payload.get("spans", [])
    lines: list[str] = []
    meta = payload.get("meta", {})
    if meta:
        described = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"trace: {described}")
    end = max((s["ts"] + s["dur"] for s in spans), default=0.0)
    lines.append(
        f"{len(spans)} spans, {len(payload.get('instants', []))} instants, "
        f"{len(payload.get('gauges', []))} gauge samples over "
        f"{end:.6f}s simulated"
    )
    dropped = payload.get("dropped", 0)
    if dropped:
        lines.append(f"WARNING: {dropped} events dropped at the cap")

    by_cat: dict[str, list[dict]] = defaultdict(list)
    for span in spans:
        by_cat[span["cat"]].append(span)
    lines.append("")
    lines.append("layers (spans by category):")
    for cat in sorted(by_cat):
        cat_spans = by_cat[cat]
        total = sum(s["dur"] for s in cat_spans)
        lines.append(
            f"  {cat:8s} {len(cat_spans):7d} spans  "
            f"Σdur {_fmt_seconds(total)}"
        )

    by_name: dict[tuple[str, str], list[float]] = defaultdict(list)
    for span in spans:
        by_name[(span["cat"], span["name"])].append(span["dur"])
    lines.append("")
    lines.append(
        f"  {'span':32s} {'count':>7s} {'Σdur':>11s} {'mean':>11s} "
        f"{'max':>11s}"
    )
    for (cat, name), durs in sorted(
        by_name.items(), key=lambda item: -sum(item[1])
    ):
        total = sum(durs)
        lines.append(
            f"  {cat + '/' + name:32s} {len(durs):7d} "
            f"{_fmt_seconds(total)} {_fmt_seconds(total / len(durs))} "
            f"{_fmt_seconds(max(durs))}"
        )

    phases = phase_breakdown(payload)
    if phases:
        lines.append("")
        lines.append(phases)

    metrics = payload.get("metrics", {})
    if metrics:
        lines.append("")
        lines.append(f"metrics: {len(metrics)} federated counters "
                     f"(see the dump's 'metrics' key)")
    return "\n".join(lines)


def phase_breakdown(payload: dict) -> str:
    """Per-phase wall-of-sim-time table from ``phase:*`` spans."""
    phases: dict[str, list[dict]] = defaultdict(list)
    for span in payload.get("spans", []):
        if span["name"].startswith("phase:"):
            phases[span["name"][len("phase:"):]].append(span)
    if not phases:
        return ""
    lines = ["phases (max over ranks):"]
    for phase in sorted(phases):
        spans = phases[phase]
        longest = max(s["dur"] for s in spans)
        lines.append(
            f"  {phase:12s} {len(spans):5d} ranks  "
            f"max {_fmt_seconds(longest)}"
        )
    return "\n".join(lines)


#: span names that count as a foreground write stall: group-commit
#: followers parked behind a leader, pacer/slowdown delays, and writes
#: parked outright at the L0 stop trigger
STALL_SPAN_NAMES = frozenset(
    {"commit_stall", "write_slowdown", "write_stop"}
)


def stall_windows(
    payload: dict, names: frozenset[str] = STALL_SPAN_NAMES
) -> list[tuple[float, float]]:
    """Merged (start, end) intervals where any write was stalled.

    Overlapping/adjacent stall spans (concurrent parked writers) merge
    into one window, so the count reflects distinct stall *episodes* —
    the stability metric Luo & Carey argue for — rather than the number
    of affected writes.
    """
    intervals = sorted(
        (span["ts"], span["ts"] + span["dur"])
        for span in payload.get("spans", [])
        if span["cat"] == "lsm" and span["name"] in names and span["dur"] > 0
    )
    windows: list[tuple[float, float]] = []
    for start, end in intervals:
        if windows and start <= windows[-1][1]:
            windows[-1] = (windows[-1][0], max(windows[-1][1], end))
        else:
            windows.append((start, end))
    return windows


def stalls_report(payload: dict) -> dict:
    """Stall-window statistics as a JSON-ready dict."""
    windows = stall_windows(payload)
    durations = [end - start for start, end in windows]
    by_name: dict[str, dict] = {}
    for span in payload.get("spans", []):
        if span["cat"] == "lsm" and span["name"] in STALL_SPAN_NAMES:
            entry = by_name.setdefault(
                span["name"], {"count": 0, "total_duration": 0.0}
            )
            entry["count"] += 1
            entry["total_duration"] += span["dur"]
    return {
        "windows": len(windows),
        "total_duration": sum(durations),
        "longest_window": max(durations, default=0.0),
        "spans": {name: by_name[name] for name in sorted(by_name)},
    }


def format_stalls(payload: dict) -> str:
    """Human-readable rendering of :func:`stalls_report`."""
    report = stalls_report(payload)
    lines = [
        f"stall windows: {report['windows']}",
        f"total stalled: {_fmt_seconds(report['total_duration']).strip()}",
        f"longest window: {_fmt_seconds(report['longest_window']).strip()}",
    ]
    if report["spans"]:
        lines.append("by span:")
        for name, entry in report["spans"].items():
            lines.append(
                f"  {name:16s} {entry['count']:7d} spans  "
                f"Σdur {_fmt_seconds(entry['total_duration'])}"
            )
    else:
        lines.append("no stall spans recorded")
    return "\n".join(lines)


def top_spans(payload: dict, count: int = 15) -> str:
    """The ``count`` longest spans, one per line."""
    spans = sorted(
        payload.get("spans", []), key=lambda s: s["dur"], reverse=True
    )[:count]
    lines = [
        f"  {'dur':>11s} {'ts':>11s}  {'span':32s} track",
    ]
    for span in spans:
        label = f"{span['cat']}/{span['name']}"
        lines.append(
            f"  {_fmt_seconds(span['dur'])} {_fmt_seconds(span['ts'])}  "
            f"{label:32s} {span.get('track', '')}"
        )
    return "\n".join(lines)
