"""``repro.trace``: checkpoint-timeline tracing and unified metrics.

A :class:`Tracer` records spans on the **simulated** clock (wall clock
optionally alongside) across every layer of the stack — the sim engine's
process scheduling, the PFS client/OST/OSS RPC pipeline, the LSM
engine's group commits/flushes/compactions, the LSMIO manager's K/V
operations, and MPI messaging.  A :class:`MetricsRegistry` federates the
pre-existing counter surfaces (``PerfCounters``, ``ClientStats``,
``DBStats``, per-server stats) behind one namespaced snapshot.

Tracing is **off by default** and free when off: instrumented code holds
one module-global read and a ``None`` check per site, allocating
nothing.  Recording never advances simulated time, so traced runs are
bit-identical to untraced ones.

Quickstart::

    from repro import trace

    tracer = trace.install()            # + a fresh MetricsRegistry
    ...  # run a benchmark / workload
    payload = tracer.to_payload(metrics=trace.current_metrics().snapshot())
    trace.write_chrome_trace(payload, "out.chrome.json")
    trace.uninstall()

CLI: ``python -m repro.trace summarize|top-spans|export|validate``.
"""

from __future__ import annotations

from typing import Optional

from repro.trace import runtime
from repro.trace.export import (
    load_payload,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_payload,
)
from repro.trace.metrics import MetricsRegistry
from repro.trace.runtime import NULL_SPAN, ambient_clock, span
from repro.trace.summary import phase_breakdown, summarize, top_spans
from repro.trace.tracer import Span, Tracer

__all__ = [
    "Tracer",
    "Span",
    "MetricsRegistry",
    "NULL_SPAN",
    "install",
    "uninstall",
    "current_tracer",
    "current_metrics",
    "session",
    "span",
    "ambient_clock",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_payload",
    "load_payload",
    "summarize",
    "top_spans",
    "phase_breakdown",
]


def install(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tracer:
    """Install ``tracer`` (default: a fresh one) as the global tracer.

    Also installs ``metrics`` (default: a fresh :class:`MetricsRegistry`)
    so instrumented constructors self-register their counter objects.
    Returns the installed tracer.
    """
    tracer = tracer if tracer is not None else Tracer()
    runtime.TRACER = tracer
    runtime.METRICS = metrics if metrics is not None else MetricsRegistry()
    return tracer


def uninstall() -> None:
    """Disable tracing globally (instrumentation reverts to no-ops)."""
    runtime.TRACER = None
    runtime.METRICS = None


def current_tracer() -> Optional[Tracer]:
    return runtime.TRACER


def current_metrics() -> Optional[MetricsRegistry]:
    return runtime.METRICS


class session:
    """Context manager: install on enter, uninstall on exit.

    ::

        with trace.session() as tracer:
            run_workload()
        print(trace.summarize(tracer.to_payload()))
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._tracer = tracer
        self._metrics = metrics

    def __enter__(self) -> Tracer:
        return install(self._tracer, self._metrics)

    def __exit__(self, *exc) -> None:
        uninstall()
