"""Leveled compaction: picking and executing the rolling merge (§2.2).

The paper's description — "leaf nodes in C1 are never edited in-place but
instead new ones are added as part of an asynchronous rolling-merge process
where the old ones are deleted afterwards" — is exactly a leveled
compaction: merge-sort the input tables, write fresh output tables at the
next level, then drop the inputs from the version.

LSMIO *disables* compaction (checkpoints are write-once-read-rarely, so
paying merge bandwidth buys nothing); the implementation is complete here
because the engine is general and ``bench_ablations.py`` measures the cost
of leaving it on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.lsm.dbformat import encode_internal_key
from repro.lsm.iterator import MergingIterator, collapse_internal_entries
from repro.lsm.manifest import FileMetaData, Version, VersionEdit
from repro.lsm.options import Options


@dataclass
class CompactionTask:
    """A chosen compaction: merge ``inputs[0]`` (level) with ``inputs[1]``."""

    level: int                      # source level
    inputs: list[list[FileMetaData]] = field(default_factory=lambda: [[], []])

    @property
    def target_level(self) -> int:
        return self.level + 1

    def all_inputs(self) -> list[FileMetaData]:
        return self.inputs[0] + self.inputs[1]

    def total_bytes(self) -> int:
        return sum(f.file_size for f in self.all_inputs())


def level_score(version: Version, level: int, options: Options) -> float:
    """Compaction pressure for ``level`` (>= 1.0 means compaction due).

    L0 is scored by file count (every L0 file is another sorted run each
    read must merge); deeper levels by bytes versus their budget.
    """
    if level == 0:
        return version.num_files(0) / options.level0_file_num_compaction_trigger
    if level >= version.num_levels - 1:
        return 0.0  # the bottom level has nowhere to compact into
    return version.level_bytes(level) / options.max_bytes_for_level(level)


def pick_compaction(version: Version, options: Options) -> Optional[CompactionTask]:
    """Choose the level with the highest score >= 1.0, or None."""
    best_level = -1
    best_score = 1.0
    for level in range(version.num_levels - 1):
        score = level_score(version, level, options)
        if score >= best_score:
            best_level = level
            best_score = score
    if best_level < 0:
        return None
    task = CompactionTask(level=best_level)
    if best_level == 0:
        # All L0 files participate: they may mutually overlap, and taking
        # every run keeps read amplification bounded after one pass.
        task.inputs[0] = list(version.files[0])
    else:
        # Oldest-first rotation through the level (LevelDB uses a compact
        # pointer; taking the file with the smallest number is the same
        # round-robin effect with no extra persistent state).
        task.inputs[0] = [min(version.files[best_level], key=lambda f: f.number)]
    if not task.inputs[0]:
        return None
    lo = min(f.smallest_user_key for f in task.inputs[0])
    hi = max(f.largest_user_key for f in task.inputs[0])
    task.inputs[1] = version.overlapping_files(task.target_level, lo, hi)
    return task


def is_bottommost(version: Version, task: CompactionTask) -> bool:
    """True when no level deeper than the target holds overlapping keys."""
    inputs = task.all_inputs()
    if not inputs:
        return True
    lo = min(f.smallest_user_key for f in inputs)
    hi = max(f.largest_user_key for f in inputs)
    for level in range(task.target_level + 1, version.num_levels):
        if version.overlapping_files(level, lo, hi):
            return False
    return True


class CompactionExecutor:
    """Runs a :class:`CompactionTask`: merge inputs → new tables → edit.

    Collaborators are injected as callables so this module stays free of
    DB internals:

    - ``open_table_iter(meta)`` → iterator of (internal key, value);
    - ``new_table_writer()`` → (file_number, TableBuilder-like, finalize)
      where ``finalize(builder)`` closes the file and returns its size.
    """

    def __init__(
        self,
        options: Options,
        open_table_iter: Callable,
        new_table_writer: Callable,
    ):
        self._options = options
        self._open_table_iter = open_table_iter
        self._new_table_writer = new_table_writer

    def run(self, task: CompactionTask, drop_tombstones: bool) -> VersionEdit:
        """Execute the merge; returns the edit to apply (files in/out)."""
        # Input streams ordered newest-to-oldest: L0 files by descending
        # file number, then the target level files (older than any L0).
        streams = []
        level0_sorted = sorted(
            task.inputs[0], key=lambda f: f.number, reverse=(task.level == 0)
        )
        for meta in level0_sorted:
            streams.append(self._open_table_iter(meta))
        for meta in task.inputs[1]:
            streams.append(self._open_table_iter(meta))

        merged = MergingIterator(streams)
        edit = VersionEdit()
        builder = None
        finalize = None
        file_number = None
        first_key = None

        def roll_output() -> None:
            nonlocal builder, finalize, file_number, first_key
            if builder is None or builder.num_entries == 0:
                return
            size = finalize(builder)
            edit.add_file(
                task.target_level,
                FileMetaData(
                    number=file_number,
                    file_size=size,
                    smallest=builder.first_key,
                    largest=builder.last_key,
                ),
            )
            builder = None
            finalize = None
            first_key = None

        for user_key, seq, value, vtype in collapse_internal_entries(
            merged, drop_tombstones=drop_tombstones
        ):
            if builder is None:
                file_number, builder, finalize = self._new_table_writer()
            ikey = encode_internal_key(user_key, seq, vtype)
            builder.add(ikey, value)
            if builder.file_size >= self._options.target_file_size_base:
                roll_output()
        roll_output()

        for meta in task.inputs[0]:
            edit.delete_file(task.level, meta.number)
        for meta in task.inputs[1]:
            edit.delete_file(task.target_level, meta.number)
        return edit


__all__ = [
    "CompactionExecutor",
    "CompactionTask",
    "is_bottommost",
    "level_score",
    "pick_compaction",
]
