"""Leveled compaction: picking, planning, and executing the rolling merge.

The paper's description — "leaf nodes in C1 are never edited in-place but
instead new ones are added as part of an asynchronous rolling-merge process
where the old ones are deleted afterwards" — is exactly a leveled
compaction: merge-sort the input tables, write fresh output tables at the
next level, then drop the inputs from the version.

LSMIO *disables* compaction (checkpoints are write-once-read-rarely, so
paying merge bandwidth buys nothing); the implementation is complete here
because the engine is general and ``bench_ablations.py`` measures the cost
of leaving it on.

Subcompactions (Pome-style parallel compaction): one chosen compaction is
split into key-range partitions at *fan-out independent* boundaries —
user-key separators taken from the input tables' index blocks, segmented
by estimated bytes and capped by grandparent overlap.  Both the serial
merge and any parallel execution roll their output files at exactly these
boundaries, and installation assigns file numbers in key order, so the
partitioned result is byte-identical to the serial one: parallelism moves
*when* bytes are produced, never *what* bytes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple, Optional

from repro.lsm.dbformat import MAX_SEQUENCE, encode_internal_key, seek_key
from repro.lsm.iterator import MergingIterator, collapse_internal_entries
from repro.lsm.manifest import FileMetaData, Version, VersionEdit
from repro.lsm.options import Options


@dataclass
class CompactionTask:
    """A chosen compaction: merge ``inputs[0]`` (level) with ``inputs[1]``."""

    level: int                      # source level
    inputs: list[list[FileMetaData]] = field(default_factory=lambda: [[], []])

    @property
    def target_level(self) -> int:
        return self.level + 1

    def all_inputs(self) -> list[FileMetaData]:
        return self.inputs[0] + self.inputs[1]

    def total_bytes(self) -> int:
        return sum(f.file_size for f in self.all_inputs())


def level_score(version: Version, level: int, options: Options) -> float:
    """Compaction pressure for ``level`` (>= 1.0 means compaction due).

    L0 is scored by file count (every L0 file is another sorted run each
    read must merge); deeper levels by bytes versus their budget.
    """
    if level == 0:
        return version.num_files(0) / options.level0_file_num_compaction_trigger
    if level >= version.num_levels - 1:
        return 0.0  # the bottom level has nowhere to compact into
    return version.level_bytes(level) / options.max_bytes_for_level(level)


def pick_compaction(version: Version, options: Options) -> Optional[CompactionTask]:
    """Choose the level with the highest score >= 1.0, or None."""
    best_level = -1
    best_score = 1.0
    for level in range(version.num_levels - 1):
        score = level_score(version, level, options)
        if score >= best_score:
            best_level = level
            best_score = score
    if best_level < 0:
        return None
    task = CompactionTask(level=best_level)
    if best_level == 0:
        # All L0 files participate: they may mutually overlap, and taking
        # every run keeps read amplification bounded after one pass.
        task.inputs[0] = list(version.files[0])
    else:
        # Oldest-first rotation through the level (LevelDB uses a compact
        # pointer; taking the file with the smallest number is the same
        # round-robin effect with no extra persistent state).
        task.inputs[0] = [min(version.files[best_level], key=lambda f: f.number)]
    if not task.inputs[0]:
        return None
    lo = min(f.smallest_user_key for f in task.inputs[0])
    hi = max(f.largest_user_key for f in task.inputs[0])
    task.inputs[1] = version.overlapping_files(task.target_level, lo, hi)
    return task


def is_bottommost(version: Version, task: CompactionTask) -> bool:
    """True when no level deeper than the target holds overlapping keys."""
    inputs = task.all_inputs()
    if not inputs:
        return True
    lo = min(f.smallest_user_key for f in inputs)
    hi = max(f.largest_user_key for f in inputs)
    for level in range(task.target_level + 1, version.num_levels):
        if version.overlapping_files(level, lo, hi):
            return False
    return True


# ---------------------------------------------------------------------------
# Subcompaction planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubcompactionRange:
    """One key-range partition: user keys in [lo, hi) (None = open end)."""

    index: int
    lo: Optional[bytes]
    hi: Optional[bytes]


@dataclass
class CompactionPlan:
    """A task plus its hard output boundaries (fan-out independent).

    ``boundaries`` are user keys: every output file rolls immediately
    before the first entry whose user key reaches the next boundary, in
    the serial merge and in every partition alike — that shared rolling
    rule is what makes the parallel result byte-identical.
    """

    task: CompactionTask
    drop_tombstones: bool
    boundaries: tuple[bytes, ...] = ()
    grandparent_seals: int = 0

    @property
    def ranges(self) -> list[SubcompactionRange]:
        bounds: list[Optional[bytes]] = [None, *self.boundaries, None]
        return [
            SubcompactionRange(i, bounds[i], bounds[i + 1])
            for i in range(len(bounds) - 1)
        ]


def compaction_boundaries(
    version: Version,
    task: CompactionTask,
    options: Options,
    index_user_keys: Optional[Callable[[FileMetaData], Optional[list]]] = None,
) -> tuple[tuple[bytes, ...], int]:
    """Hard output-boundary user keys for ``task`` (+ grandparent seals).

    Deterministic and independent of execution fan-out: candidates are
    the input tables' index-block separators (falling back to file
    boundaries when an index is unavailable), weighted by estimated
    bytes; a boundary is emitted whenever the accumulated estimate
    reaches ``target_file_size_base``, or earlier when the segment's
    grandparent overlap passes ``max_grandparent_overlap_bytes`` (the
    LevelDB ``ShouldStopBefore`` cap, applied at plan time).
    """
    inputs = task.all_inputs()
    if not inputs:
        return (), 0
    target = options.target_file_size_base
    if task.total_bytes() <= target:
        return (), 0

    lo = min(f.smallest_user_key for f in inputs)
    hi = max(f.largest_user_key for f in inputs)
    candidates: list[tuple[bytes, int]] = []
    for meta in inputs:
        keys = index_user_keys(meta) if index_user_keys is not None else None
        if keys:
            weight = max(1, meta.file_size // len(keys))
            candidates.extend((key, weight) for key in keys)
        else:
            candidates.append((meta.largest_user_key, meta.file_size))
    candidates.sort(key=lambda item: item[0])

    gp_level = task.target_level + 1
    grandparents = (
        version.overlapping_files(gp_level, lo, hi)
        if gp_level < version.num_levels
        else []
    )
    max_overlap = options.max_grandparent_overlap_bytes or 10 * target

    boundaries: list[bytes] = []
    seals = 0
    acc = 0          # estimated output bytes since the last boundary
    gp_bytes = 0     # grandparent bytes wholly passed since the last boundary
    gp_index = 0
    for key, weight in candidates:
        if key >= hi:
            break  # the final segment must keep at least one key
        acc += weight
        while (
            gp_index < len(grandparents)
            and grandparents[gp_index].largest_user_key < key
        ):
            gp_bytes += grandparents[gp_index].file_size
            gp_index += 1
        if key <= lo or (boundaries and key <= boundaries[-1]):
            continue
        if acc >= target or gp_bytes > max_overlap:
            if gp_bytes > max_overlap and acc < target:
                seals += 1
            boundaries.append(key)
            acc = 0
            gp_bytes = 0
    return tuple(boundaries), seals


def plan_compaction(
    version: Version,
    task: CompactionTask,
    options: Options,
    drop_tombstones: bool,
    index_user_keys: Optional[Callable[[FileMetaData], Optional[list]]] = None,
) -> CompactionPlan:
    """Partition ``task`` into key ranges; see :func:`compaction_boundaries`."""
    boundaries, seals = compaction_boundaries(
        version, task, options, index_user_keys
    )
    return CompactionPlan(
        task=task,
        drop_tombstones=drop_tombstones,
        boundaries=boundaries,
        grandparent_seals=seals,
    )


def group_ranges(
    ranges: list[SubcompactionRange], fanout: int
) -> list[list[SubcompactionRange]]:
    """Contiguous near-even grouping into at most ``fanout`` jobs.

    Grouping affects only which sim process executes a range, never the
    ranges themselves, so any fan-out yields the same outputs.
    """
    jobs = max(1, min(int(fanout), len(ranges)))
    groups: list[list[SubcompactionRange]] = []
    start = 0
    for slot in range(jobs):
        size = (len(ranges) - start + (jobs - slot) - 1) // (jobs - slot)
        groups.append(ranges[start:start + size])
        start += size
    return [group for group in groups if group]


class SubcompactionOutput(NamedTuple):
    """One finalized (but not yet installed) output table of a partition."""

    range_index: int
    seq: int
    temp_name: str
    file_size: int
    smallest: bytes
    largest: bytes


class CompactionStats:
    """Counters exported under ``lsm.compaction.{db}`` in the registry."""

    def __init__(self) -> None:
        self.subcompactions = 0       #: key-range partitions executed
        self.parallel_compactions = 0  #: compactions via the partitioned path
        self.planned_boundaries = 0
        self.grandparent_seals = 0    #: boundaries forced by the overlap cap
        self.sub_input_bytes = 0
        self.sub_output_bytes = 0
        self.pipelined_chunks = 0
        self.pipelined_bytes = 0
        self.pipeline_stall_time = 0.0  #: producer blocked on backpressure
        self.slowdown_writes = 0      #: foreground writes delayed
        self.stop_writes = 0          #: foreground writes parked at the cliff
        self.stall_time = 0.0
        self.pacer_adjustments = 0
        self.pacer_delay_time = 0.0
        self.pacer_rate = 0.0         #: current compaction limiter bytes/s
        self.pacer_fanout = 1

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class PipelinedTableFile:
    """Write-behind wrapper overlapping merge CPU with simulated I/O.

    The merge loop (block building, checksumming, modeled CPU charges)
    runs on the producer process; appends are handed to a companion sim
    process that performs the actual writes, bounded by ``limit``
    buffered bytes of backpressure.  Single producer; order-preserving —
    the byte stream reaching the underlying file is exactly the append
    sequence, so pipelining moves *when* bytes land, never *what* bytes.
    ``sync``/``close`` quiesce the queue first, keeping durability points
    unchanged.  With no engine (or ``limit`` 0) every call passes through
    inline.  A writer-side failure is re-raised on the producer at its
    next call, like any inline append failure.
    """

    def __init__(
        self,
        dest,
        engine=None,
        limit: int = 1 << 20,
        cpu_charge: Optional[Callable[[int, str], None]] = None,
        stats: Optional[CompactionStats] = None,
    ) -> None:
        self._dest = dest
        self._engine = engine if (engine is not None and limit > 0) else None
        self._limit = int(limit)
        self._cpu_charge = cpu_charge
        self._stats = stats
        self._chunks: deque = deque()
        self._buffered = 0        # queued + in-flight bytes
        self._writer = None
        self._data_gate = None    # writer parked waiting for data
        self._space_gate = None   # producer parked on backpressure
        self._idle_gate = None    # producer parked in quiesce
        self._closing = False
        self._error: Optional[BaseException] = None

    # -- producer side ---------------------------------------------------

    def append(self, data) -> None:
        self._push(data, owned=False)

    def append_owned(self, data) -> None:
        self._push(data, owned=True)

    def _push(self, data, owned: bool) -> None:
        self._check_error()
        if self._cpu_charge is not None:
            # Block build + CRC cost, charged on the producer so it
            # overlaps the writer process's in-flight I/O.
            self._cpu_charge(len(data), "compaction-block")
        if self._engine is None:
            if owned:
                self._dest.append_owned(data)
            else:
                self._dest.append(data)
            return
        self._chunks.append((data, owned))
        self._buffered += len(data)
        if self._stats is not None:
            self._stats.pipelined_chunks += 1
            self._stats.pipelined_bytes += len(data)
        if self._writer is None:
            self._writer = self._engine.spawn(
                self._drain, name="compaction-pipe", daemon=True
            )
        elif self._data_gate is not None:
            gate, self._data_gate = self._data_gate, None
            gate.succeed()
        from repro import sim

        while self._buffered > self._limit and self._error is None:
            self._space_gate = sim.Event(self._engine, name="pipe-space")
            start = sim.now()
            sim.wait(self._space_gate)
            if self._stats is not None:
                self._stats.pipeline_stall_time += sim.now() - start
        self._check_error()

    def flush(self) -> None:
        self._quiesce()
        self._dest.flush()

    def sync(self) -> None:
        self._quiesce()
        self._dest.sync()

    def close(self) -> None:
        self._closing = True
        self._quiesce()
        if self._data_gate is not None:
            # Release the parked writer so it observes _closing and exits.
            gate, self._data_gate = self._data_gate, None
            gate.succeed()
        self._dest.close()

    def _quiesce(self) -> None:
        if self._engine is None:
            return
        from repro import sim

        while self._buffered > 0 and self._error is None:
            self._idle_gate = sim.Event(self._engine, name="pipe-idle")
            sim.wait(self._idle_gate)
        self._check_error()

    def _check_error(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # -- companion writer process ----------------------------------------

    def _drain(self) -> None:
        from repro import sim

        while True:
            while self._chunks:
                data, owned = self._chunks.popleft()
                try:
                    if owned:
                        self._dest.append_owned(data)
                    else:
                        self._dest.append(data)
                except BaseException as exc:
                    self._error = exc
                    self._chunks.clear()
                    self._buffered = 0
                    self._wake_producer()
                    return
                self._buffered -= len(data)
                if self._space_gate is not None and self._buffered <= self._limit:
                    gate, self._space_gate = self._space_gate, None
                    gate.succeed()
            if self._buffered == 0 and self._idle_gate is not None:
                gate, self._idle_gate = self._idle_gate, None
                gate.succeed()
            if self._closing:
                return
            self._data_gate = sim.Event(self._engine, name="pipe-data")
            sim.wait(self._data_gate)

    def _wake_producer(self) -> None:
        for attr in ("_space_gate", "_idle_gate"):
            gate = getattr(self, attr)
            if gate is not None:
                setattr(self, attr, None)
                gate.succeed()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class CompactionExecutor:
    """Runs a :class:`CompactionTask`: merge inputs → new tables → edit.

    Collaborators are injected as callables so this module stays free of
    DB internals:

    - ``open_table_iter(meta)`` → iterator of (internal key, value);
    - ``new_table_writer()`` → (file_number, TableBuilder-like, finalize)
      where ``finalize(builder)`` closes the file and returns its size;
    - ``open_table_seek(meta, lo_ikey)`` (optional) → iterator starting
      at ``lo_ikey`` — lets a key-range partition read only the blocks
      it covers instead of scanning each input from the top;
    - ``new_range_writer(range_index, output_seq)`` (optional) →
      (temp_name, builder, finalize): a *deferred-number* output used by
      subcompactions, renamed into place at install time so file numbers
      are assigned in key order regardless of execution order.
    """

    def __init__(
        self,
        options: Options,
        open_table_iter: Callable,
        new_table_writer: Callable,
        open_table_seek: Optional[Callable] = None,
        new_range_writer: Optional[Callable] = None,
        stats: Optional[CompactionStats] = None,
    ):
        self._options = options
        self._open_table_iter = open_table_iter
        self._new_table_writer = new_table_writer
        self._open_table_seek = open_table_seek
        self._new_range_writer = new_range_writer
        self._stats = stats

    def _input_streams(
        self,
        task: CompactionTask,
        lo: Optional[bytes] = None,
        hi: Optional[bytes] = None,
    ) -> list:
        """Input streams newest-to-oldest, restricted to [lo, hi).

        L0 files by descending file number, then the target level files
        (older than any L0).  Files wholly outside the range are skipped;
        partially-overlapping files seek to ``lo`` when the collaborator
        supports it (falling back to a full scan plus filtering).
        """
        metas = sorted(
            task.inputs[0], key=lambda f: f.number, reverse=(task.level == 0)
        ) + list(task.inputs[1])
        streams = []
        for meta in metas:
            if lo is not None and meta.largest_user_key < lo:
                continue
            if hi is not None and meta.smallest_user_key >= hi:
                continue
            if (
                lo is not None
                and self._open_table_seek is not None
                and meta.smallest_user_key < lo
            ):
                streams.append(
                    self._open_table_seek(meta, seek_key(lo, MAX_SEQUENCE))
                )
            else:
                streams.append(self._open_table_iter(meta))
        return streams

    def _merge_outputs(
        self,
        streams: list,
        drop_tombstones: bool,
        boundaries: Iterable[bytes],
        lo: Optional[bytes],
        hi: Optional[bytes],
        make_writer: Callable,
        emit: Callable,
    ) -> None:
        """The merge loop shared by the serial and partitioned paths.

        Rolls the output at every user key in ``boundaries`` (hard,
        fan-out independent) and additionally at ``target_file_size_base``
        (which both paths reach at identical points because they see
        identical entry sequences per segment).
        """
        merged = MergingIterator(streams)
        pending = deque(boundaries)
        builder = None
        finalize = None
        token = None

        def roll_output() -> None:
            nonlocal builder, finalize, token
            if builder is None or builder.num_entries == 0:
                return
            size = finalize(builder)
            emit(token, size, builder.first_key, builder.last_key)
            builder = None
            finalize = None
            token = None

        for user_key, seq, value, vtype in collapse_internal_entries(
            merged, drop_tombstones=drop_tombstones
        ):
            if lo is not None and user_key < lo:
                continue
            if hi is not None and user_key >= hi:
                break
            while pending and user_key >= pending[0]:
                pending.popleft()
                roll_output()
            if builder is None:
                token, builder, finalize = make_writer()
            builder.add(encode_internal_key(user_key, seq, vtype), value)
            if builder.file_size >= self._options.target_file_size_base:
                roll_output()
        roll_output()

    def run(
        self,
        task: CompactionTask,
        drop_tombstones: bool,
        boundaries: Iterable[bytes] = (),
    ) -> VersionEdit:
        """Execute the serial merge; returns the edit to apply.

        ``boundaries`` (optional) forces output rolls at those user keys
        — passing a plan's boundaries makes this the serial reference
        for the partitioned execution.
        """
        edit = VersionEdit()

        def emit(number, size, first_key, last_key) -> None:
            edit.add_file(
                task.target_level,
                FileMetaData(
                    number=number,
                    file_size=size,
                    smallest=first_key,
                    largest=last_key,
                ),
            )

        self._merge_outputs(
            self._input_streams(task),
            drop_tombstones,
            boundaries,
            lo=None,
            hi=None,
            make_writer=self._new_table_writer,
            emit=emit,
        )

        for meta in task.inputs[0]:
            edit.delete_file(task.level, meta.number)
        for meta in task.inputs[1]:
            edit.delete_file(task.target_level, meta.number)
        return edit

    def run_range(
        self,
        task: CompactionTask,
        rng: SubcompactionRange,
        drop_tombstones: bool,
    ) -> list[SubcompactionOutput]:
        """Execute one key-range partition; outputs stay as temp files.

        The caller installs all partitions atomically (numbering + rename
        in key order) once every range has finished.
        """
        if self._new_range_writer is None:
            raise RuntimeError("executor lacks a new_range_writer collaborator")
        outputs: list[SubcompactionOutput] = []

        def make_writer():
            return self._new_range_writer(rng.index, len(outputs))

        def emit(temp_name, size, first_key, last_key) -> None:
            outputs.append(
                SubcompactionOutput(
                    range_index=rng.index,
                    seq=len(outputs),
                    temp_name=temp_name,
                    file_size=size,
                    smallest=first_key,
                    largest=last_key,
                )
            )

        self._merge_outputs(
            self._input_streams(task, rng.lo, rng.hi),
            drop_tombstones,
            boundaries=(),
            lo=rng.lo,
            hi=rng.hi,
            make_writer=make_writer,
            emit=emit,
        )
        if self._stats is not None:
            self._stats.subcompactions += 1
        return outputs


__all__ = [
    "CompactionExecutor",
    "CompactionPlan",
    "CompactionStats",
    "CompactionTask",
    "PipelinedTableFile",
    "SubcompactionOutput",
    "SubcompactionRange",
    "compaction_boundaries",
    "group_ranges",
    "is_bottommost",
    "level_score",
    "pick_compaction",
    "plan_compaction",
]
