"""Sorted String Table (SSTable) writer and reader — the on-disk C1..Ck trees.

File layout (LevelDB's, with a JSON properties block added)::

    [data block 0]
    [data block 1]
    ...
    [bloom filter block]
    [properties block]
    [metaindex block]   "filter.bloom" / "properties" → BlockHandle
    [index block]       last internal key per data block → BlockHandle
    [footer]            metaindex + index handles, padding, 8-byte magic

Every block is followed by a 5-byte trailer: one compression-type byte and
a fixed32 masked checksum over (payload ‖ type byte).  A ``BlockHandle``
is (varint64 offset, varint64 payload size, trailer excluded).

The builder only ever **appends** — an SSTable flush is one long sequential
write, which is precisely the disk-access pattern the paper exploits for
checkpoint bandwidth (§2.2).
"""

from __future__ import annotations

import json
import zlib
from typing import Iterator, NamedTuple, Optional

from repro.errors import CorruptionError
from repro.lsm.block import Block, BlockBuilder
from repro.lsm.bloom import BloomFilter
from repro.lsm.cache import LRUCache
from repro.lsm.dbformat import internal_compare, internal_key_user_key
from repro.lsm.env import RandomAccessFile, WritableFile
from repro.lsm.options import ChecksumType, CompressionType, Options, ReadOptions
from repro.util.varint import (
    decode_varint64,
    encode_varint64,
)

MAGIC = b"LSMIOSST"
FOOTER_SIZE = 2 * 10 + 8  # two max-size varint64 handles (padded) + magic
BLOCK_TRAILER_SIZE = 5

FILTER_KEY = b"filter.bloom"
PROPERTIES_KEY = b"properties"


def _mask(crc: int) -> int:
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF


_NONE_TYPE_BYTE = bytes([int(CompressionType.NONE)])


class BlockHandle(NamedTuple):
    """Location of a block's payload within the table file."""

    offset: int
    size: int

    def encode(self) -> bytes:
        return encode_varint64(self.offset) + encode_varint64(self.size)

    @classmethod
    def decode(cls, buf: bytes, pos: int = 0) -> tuple["BlockHandle", int]:
        offset, pos = decode_varint64(buf, pos)
        size, pos = decode_varint64(buf, pos)
        return cls(offset, size), pos


class TableBuilder:
    """Streams sorted (internal key, value) pairs into an SSTable file."""

    def __init__(self, options: Options, dest: WritableFile):
        self._options = options
        self._dest = dest
        self._data_block = BlockBuilder(
            options.block_restart_interval, compare=internal_compare
        )
        self._index_block = BlockBuilder(1, compare=internal_compare)
        self._pending_index: Optional[tuple[bytes, BlockHandle]] = None
        self._offset = 0
        self._num_entries = 0
        self._raw_bytes = 0
        self._user_keys: list[bytes] = []
        self._first_key: Optional[bytes] = None
        self._last_key: Optional[bytes] = None
        self._crc2 = options.checksum.incremental()
        self._checksum_enabled = options.checksum is not ChecksumType.NONE
        self._finished = False

    def add(self, ikey: bytes, value: bytes) -> None:
        """Add one entry; internal keys must arrive in sorted order."""
        if self._finished:
            raise ValueError("TableBuilder already finished")
        if self._pending_index is not None:
            self._index_block.add(
                self._pending_index[0], self._pending_index[1].encode()
            )
            self._pending_index = None
        if self._first_key is None:
            self._first_key = ikey
        self._last_key = ikey
        user_key = internal_key_user_key(ikey)
        if not self._user_keys or self._user_keys[-1] != user_key:
            self._user_keys.append(user_key)
        self._data_block.add(ikey, value)
        self._num_entries += 1
        self._raw_bytes += len(ikey) + len(value)
        if self._data_block.current_size_estimate() >= self._options.block_size:
            self._flush_data_block()

    def _flush_data_block(self) -> None:
        if self._data_block.empty:
            return
        last_key = self._data_block.last_key
        if self._options.compression is CompressionType.ZLIB:
            handle = self._write_block(self._data_block.finish())
            self._data_block.reset()
        else:
            # Uncompressed fast path: stream the block's segments to the
            # destination (trailer appended in place) — no copies, large
            # values pass through by reference.
            handle = self._write_owned_parts(self._data_block.detach_parts())
        # Defer the index entry so a future "shortest separator" policy
        # could consult the next block's first key (LevelDB does this).
        self._pending_index = (last_key, handle)

    def _write_block(self, payload: bytes) -> BlockHandle:
        ctype = CompressionType.NONE
        if self._options.compression is CompressionType.ZLIB:
            if self._options.cpu_charge is not None:
                self._options.cpu_charge(len(payload), "compress")
            compressed = zlib.compress(payload)
            # Same heuristic as LevelDB: keep compression only if it pays.
            if len(compressed) < len(payload) * 7 // 8:
                payload = compressed
                ctype = CompressionType.ZLIB
        return self._write_raw_block(payload, ctype)

    def _write_raw_block(self, payload: bytes, ctype: CompressionType) -> BlockHandle:
        """Append payload + 5-byte trailer; ``payload`` may be any buffer.

        The checksum runs incrementally over (payload ‖ type byte) and the
        trailer is appended separately, so a builder's ``memoryview``
        payload reaches the destination without an intermediate copy.
        """
        handle = BlockHandle(self._offset, len(payload))
        type_byte = bytes([int(ctype)])
        if self._checksum_enabled:
            crc = _mask(self._crc2(type_byte, self._crc2(payload)))
        else:
            crc = 0
        self._dest.append(payload)
        self._dest.append(type_byte + crc.to_bytes(4, "little"))
        self._offset += len(payload) + BLOCK_TRAILER_SIZE
        return handle

    def _write_owned_parts(self, parts: list) -> BlockHandle:
        """Like :meth:`_write_raw_block` for an uncompressed segment list.

        Emits the identical byte stream ([payload ‖ trailer]) while
        transferring or sharing every segment instead of copying: bytes
        segments go by reference, bytearray segments by ownership, and
        the trailer lands in place on the final (always owned) segment.
        """
        size = sum(len(part) for part in parts)
        handle = BlockHandle(self._offset, size)
        if self._checksum_enabled:
            crc = 0
            crc2 = self._crc2
            for part in parts:
                crc = crc2(part, crc)
            crc = _mask(crc2(_NONE_TYPE_BYTE, crc))
        else:
            crc = 0
        dest = self._dest
        last = parts[-1]
        last += _NONE_TYPE_BYTE
        last += crc.to_bytes(4, "little")
        for part in parts[:-1]:
            if type(part) is bytearray:
                dest.append_owned(part)
            else:
                dest.append(part)
        dest.append_owned(last)
        self._offset += size + BLOCK_TRAILER_SIZE
        return handle

    def finish(self) -> int:
        """Write filter/properties/metaindex/index/footer; return file size."""
        if self._finished:
            raise ValueError("TableBuilder already finished")
        self._flush_data_block()
        if self._pending_index is not None:
            self._index_block.add(
                self._pending_index[0], self._pending_index[1].encode()
            )
            self._pending_index = None
        self._finished = True

        # Meta blocks are stored uncompressed: they are read once at open.
        bloom = BloomFilter.build(self._user_keys, self._options.bloom_bits_per_key)
        filter_handle = self._write_raw_block(bloom.encode(), CompressionType.NONE)
        properties = {
            "num_entries": self._num_entries,
            "num_user_keys": len(self._user_keys),
            "raw_bytes": self._raw_bytes,
            "block_size": self._options.block_size,
            "compression": self._options.compression.name,
            "checksum": self._options.checksum.value,
        }
        props_handle = self._write_raw_block(
            json.dumps(properties, sort_keys=True).encode(), CompressionType.NONE
        )

        metaindex = BlockBuilder(1)
        metaindex.add(FILTER_KEY, filter_handle.encode())
        metaindex.add(PROPERTIES_KEY, props_handle.encode())
        metaindex_handle = self._write_raw_block(
            metaindex.finish(), CompressionType.NONE
        )
        index_handle = self._write_raw_block(
            self._index_block.finish(), CompressionType.NONE
        )

        footer = metaindex_handle.encode() + index_handle.encode()
        footer += b"\x00" * (FOOTER_SIZE - 8 - len(footer))
        footer += MAGIC
        self._dest.append(footer)
        self._offset += len(footer)
        return self._offset

    @property
    def num_entries(self) -> int:
        return self._num_entries

    @property
    def file_size(self) -> int:
        return self._offset

    @property
    def first_key(self) -> Optional[bytes]:
        return self._first_key

    @property
    def last_key(self) -> Optional[bytes]:
        return self._last_key


class Table:
    """Random-access reader over one SSTable file."""

    def __init__(
        self,
        options: Options,
        file: RandomAccessFile,
        file_number: int = 0,
        block_cache: Optional[LRUCache] = None,
    ):
        self._options = options
        self._file = file
        self._file_number = file_number
        self._cache = block_cache if options.enable_block_cache else None
        self._crc_fn = options.checksum.function()

        size = file.size()
        if size < FOOTER_SIZE:
            raise CorruptionError("file too small to be an SSTable")
        footer = file.read(size - FOOTER_SIZE, FOOTER_SIZE)
        if footer[-8:] != MAGIC:
            raise CorruptionError("bad SSTable magic")
        metaindex_handle, pos = BlockHandle.decode(footer, 0)
        index_handle, _ = BlockHandle.decode(footer, pos)
        self._index = Block(
            self._read_block_payload(index_handle), compare=internal_compare
        )
        metaindex = Block(self._read_block_payload(metaindex_handle))
        self._bloom: Optional[BloomFilter] = None
        self._properties: dict = {}
        for key, value in metaindex:
            handle, _ = BlockHandle.decode(value, 0)
            if key == FILTER_KEY:
                self._bloom = BloomFilter.decode(self._read_block_payload(handle))
            elif key == PROPERTIES_KEY:
                self._properties = json.loads(self._read_block_payload(handle))

    def _read_block_payload(
        self, handle: BlockHandle, verify: bool = True
    ) -> bytes:
        raw = self._file.read(handle.offset, handle.size + BLOCK_TRAILER_SIZE)
        if len(raw) != handle.size + BLOCK_TRAILER_SIZE:
            raise CorruptionError("truncated block read")
        payload = raw[: handle.size]
        type_byte = raw[handle.size]
        if verify and self._options.checksum is not ChecksumType.NONE:
            expected = int.from_bytes(
                raw[handle.size + 1 : handle.size + 5], "little"
            )
            actual = _mask(self._crc_fn(payload + raw[handle.size : handle.size + 1]))
            if expected != actual:
                raise CorruptionError(
                    f"block checksum mismatch at offset {handle.offset}"
                )
        try:
            ctype = CompressionType(type_byte)
        except ValueError as exc:
            raise CorruptionError(f"bad compression byte {type_byte}") from exc
        if ctype is CompressionType.ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise CorruptionError("block decompression failed") from exc
        return payload

    def _data_block(self, handle: BlockHandle, read_options: ReadOptions) -> Block:
        cache_key = (self._file_number, handle.offset)
        if self._cache is not None:
            cached = self._cache.get(cache_key)
            if cached is not None:
                return cached
        payload = self._read_block_payload(
            handle, verify=read_options.verify_checksums
        )
        block = Block(payload, compare=internal_compare)
        if self._cache is not None and read_options.fill_cache:
            self._cache.insert(cache_key, block, len(payload))
        return block

    def may_contain(self, user_key: bytes) -> bool:
        """Bloom-filter probe: False means the key is definitely absent."""
        if self._bloom is None:
            return True
        return self._bloom.may_contain(user_key)

    def seek(
        self, target_ikey: bytes, read_options: Optional[ReadOptions] = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield (internal key, value) with key >= ``target_ikey``."""
        read_options = read_options or ReadOptions()
        started = False
        for _, handle_bytes in self._index.seek(target_ikey):
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            block = self._data_block(handle, read_options)
            entries = block.seek(target_ikey) if not started else iter(block)
            started = True
            yield from entries

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        read_options = ReadOptions()
        for _, handle_bytes in self._index:
            handle, _ = BlockHandle.decode(handle_bytes, 0)
            yield from self._data_block(handle, read_options)

    def index_user_keys(self) -> list[bytes]:
        """User-key separators from the index block (last key per block).

        The index block is resident from open, so this costs no I/O; the
        compaction planner uses these as candidate subcompaction
        boundaries — every candidate falls on a data-block edge, so a
        range-restricted merge never splits a block between partitions.
        """
        return [internal_key_user_key(ikey) for ikey, _ in self._index]

    @property
    def properties(self) -> dict:
        """The JSON properties block (entry counts, sizes, codec info)."""
        return dict(self._properties)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "Table":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
