"""Flush/compaction executors: where background work runs.

The paper configures "a single thread ... for flushing writes" (§3.1.2).
The engine keeps that policy pluggable:

- :class:`SyncExecutor` runs jobs inline (deterministic; the default);
- :class:`ThreadExecutor` runs them on one daemon worker thread — real
  asynchrony for the standalone library's async write mode;
- the simulation substrate provides a ``SimExecutor`` that runs jobs as
  discrete-event processes so flushes overlap compute in *simulated* time.

All executors expose the same three methods; ``drain()`` is the write
barrier's hook — it blocks until every submitted job has finished and
re-raises the first job exception, so a failed background flush cannot be
silently lost.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional


class Executor:
    """Interface: submit jobs, drain to a barrier, close."""

    def submit(self, job: Callable[[], None]) -> None:
        raise NotImplementedError

    def drain(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SyncExecutor(Executor):
    """Runs each job immediately on the calling thread."""

    def submit(self, job: Callable[[], None]) -> None:
        job()

    def drain(self) -> None:
        pass

    def close(self) -> None:
        pass


class ThreadExecutor(Executor):
    """A single background worker thread with barrier-style drain."""

    def __init__(self, name: str = "lsm-flush"):
        self._queue: "queue.Queue[Optional[Callable[[], None]]]" = queue.Queue()
        self._pending = 0
        self._cond = threading.Condition()
        self._error: Optional[BaseException] = None
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._closed = False
        self._worker.start()

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                job()
            except BaseException as exc:  # propagated at drain()
                with self._cond:
                    if self._error is None:
                        self._error = exc
            finally:
                with self._cond:
                    self._pending -= 1
                    self._cond.notify_all()

    def submit(self, job: Callable[[], None]) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")
        with self._cond:
            self._pending += 1
        self._queue.put(job)

    def drain(self) -> None:
        with self._cond:
            while self._pending > 0:
                self._cond.wait()
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def close(self) -> None:
        if self._closed:
            return
        self.drain()
        self._closed = True
        self._queue.put(None)
        self._worker.join()
