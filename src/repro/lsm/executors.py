"""Flush/compaction executors: where background work runs.

The paper configures "a single thread ... for flushing writes" (§3.1.2).
The engine keeps that policy pluggable:

- :class:`SyncExecutor` runs jobs inline (deterministic; the default);
- :class:`ThreadExecutor` runs them on one daemon worker thread — real
  asynchrony for the standalone library's async write mode;
- the simulation substrate provides a ``SimExecutor`` that runs jobs as
  discrete-event processes so flushes overlap compute in *simulated* time.

All executors expose the same three methods.  Jobs carry an I/O service
class (:class:`repro.io.Priority`): the executor runs each job inside the
matching :func:`repro.io.io_priority` context so every client RPC the job
issues is classified, and ``drain(priorities=...)`` can act as a
*selective* barrier — ``write_barrier`` waits only on FOREGROUND+FLUSH
work, never on trailing compaction.

Error contract (pinned by ``tests/lsm/test_executors.py``):

- ``drain()`` re-raises the **first** failed job's exception, in
  submission order, even when later jobs also fail; the error is
  consumed (a second drain does not re-raise it).
- A class-filtered ``drain`` still re-raises a recorded error from any
  class — a failed background job must surface at the next barrier, not
  be silently lost to filtering.
- ``close()`` is idempotent: the first call drains (and may raise); any
  further call is a no-op even if the first raised.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable, Optional

from repro.io import Priority, io_priority


class Executor:
    """Interface: submit classified jobs, drain to a barrier, close."""

    def submit(
        self, job: Callable[[], None], priority: Priority = Priority.FLUSH
    ) -> None:
        raise NotImplementedError

    def drain(self, priorities: Optional[Iterable[Priority]] = None) -> None:
        """Barrier: block until submitted jobs finish, re-raise failures.

        ``priorities=None`` waits for everything; a set waits only for
        jobs submitted under those classes (recorded errors from any
        class still re-raise — they cannot be silently lost).
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def run_jobs(
        self,
        jobs: Iterable[Callable[[], None]],
        priority: Priority = Priority.COMPACTION,
    ) -> None:
        """Run ``jobs`` to completion before returning (subcompaction fan-out).

        Unlike :meth:`submit`, this is a *synchronous* fan-out used from
        inside an already-running background job (a compaction running
        its key-range partitions).  The base implementation is
        sequential — correct on any executor because partition
        boundaries, not concurrency, define the outputs.  Parallel
        executors override this to overlap the jobs in simulated time.
        Contract either way: when this returns, every job has completed,
        or the first failure (by job index) has been raised.
        """
        for job in jobs:
            with io_priority(priority):
                job()


class SyncExecutor(Executor):
    """Runs each job immediately on the calling thread."""

    def submit(
        self, job: Callable[[], None], priority: Priority = Priority.FLUSH
    ) -> None:
        with io_priority(priority):
            job()

    def drain(self, priorities: Optional[Iterable[Priority]] = None) -> None:
        pass

    def close(self) -> None:
        pass


class ThreadExecutor(Executor):
    """A single background worker thread with barrier-style drain."""

    def __init__(self, name: str = "lsm-flush"):
        self._queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self._pending = {p: 0 for p in Priority}
        self._cond = threading.Condition()
        self._error: Optional[BaseException] = None
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._closed = False
        self._worker.start()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, priority = item
            try:
                with io_priority(priority):
                    job()
            except BaseException as exc:  # propagated at drain()
                with self._cond:
                    # Single worker runs jobs in submission order, so
                    # first-recorded == first-submitted failure; later
                    # failures are dropped (drain's pinned contract).
                    if self._error is None:
                        self._error = exc
            finally:
                with self._cond:
                    self._pending[priority] -= 1
                    self._cond.notify_all()

    def submit(
        self, job: Callable[[], None], priority: Priority = Priority.FLUSH
    ) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")
        with self._cond:
            self._pending[priority] += 1
        self._queue.put((job, priority))

    def drain(self, priorities: Optional[Iterable[Priority]] = None) -> None:
        waited = (
            tuple(Priority) if priorities is None else tuple(priorities)
        )
        with self._cond:
            while any(self._pending[p] > 0 for p in waited):
                self._cond.wait()
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def close(self) -> None:
        if self._closed:
            return
        # Flag first: close() stays a no-op on re-entry even when the
        # drain below raises a deferred job error.
        self._closed = True
        try:
            self.drain()
        finally:
            self._queue.put(None)
            self._worker.join()
