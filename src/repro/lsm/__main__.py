"""CLI for database inspection: ``python -m repro.lsm <cmd> <dbdir>``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.lsm.tools import db_stats, dump_db, verify_db
from repro.util.humanize import format_size


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lsm",
        description="Inspect an LSM database directory",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="checksum/order-check every table")
    verify.add_argument("dbdir")

    stats = sub.add_parser("stats", help="level shape and counters")
    stats.add_argument("dbdir")
    stats.add_argument("--json", action="store_true")

    dump = sub.add_parser("dump", help="print user-visible keys")
    dump.add_argument("dbdir")
    dump.add_argument("--limit", type=int, default=None)
    dump.add_argument(
        "--values", action="store_true", help="print value bytes too"
    )
    args = parser.parse_args(argv)

    if args.command == "verify":
        report = verify_db(args.dbdir)
        print(report.summary())
        return 0 if report.ok else 1
    if args.command == "stats":
        result = db_stats(args.dbdir)
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(f"{result['dbname']}: {result['total_files']} tables, "
                  f"{format_size(result['total_bytes'])}, "
                  f"last sequence {result['last_sequence']}")
            for item in result["levels"]:
                print(f"  L{item['level']}: {item['files']} files, "
                      f"{format_size(item['bytes'])}")
        return 0
    if args.command == "dump":
        for key, value in dump_db(args.dbdir, limit=args.limit):
            if args.values:
                print(f"{key!r} = {value!r}")
            else:
                print(f"{key!r} ({len(value)} bytes)")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
