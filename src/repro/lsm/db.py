"""The database: LevelDB/RocksDB-shaped facade over all engine components.

Write path (``put``/``append``/``delete``/``write``):

1. stamp the batch with fresh sequence numbers;
2. append it to the WAL (unless disabled — LSMIO's configuration);
3. insert each operation into the memtable;
4. when the memtable reaches ``write_buffer_size``, freeze it and hand a
   flush job to the executor — the flush emits one SSTable with a single
   long sequential write, which is the mechanism the paper leans on.

Read path (``get``): memtable → frozen memtables → L0 newest-first → one
file per deeper level, accumulating ``append`` operands until a base value
or tombstone resolves the chain.
"""

from __future__ import annotations

import re
from collections import deque
from itertools import islice
from typing import Iterator, Optional

from repro.errors import (
    ClosedError,
    InvalidArgumentError,
    NotFoundError,
)
from repro.lsm.batch import WriteBatch
from repro.lsm.cache import LRUCache
from repro.lsm.compaction import (
    CompactionExecutor,
    CompactionPlan,
    CompactionStats,
    PipelinedTableFile,
    group_ranges,
    is_bottommost,
    pick_compaction,
    plan_compaction,
)
from repro.lsm.dbformat import (
    MAX_SEQUENCE,
    ValueType,
    decode_internal_key,
    seek_key,
)
from repro.io import Priority, io_priority
from repro.lsm.env import Env, LocalFsEnv
from repro.lsm.executors import Executor, SyncExecutor
from repro.lsm.iterator import MergingIterator, resolve_user_entries
from repro.lsm.manifest import FileMetaData, VersionEdit, VersionSet
from repro.lsm.memtable import MemTable
from repro.lsm.options import Options, ReadOptions, WriteOptions
from repro.lsm.pacing import CompactionPacer
from repro.lsm.sstable import Table, TableBuilder
from repro.lsm.wal import LogReader, LogWriter
from repro.trace import runtime as _trace

_FILE_RE = re.compile(r"^(\d{6})\.(log|sst)$")

#: subcompaction outputs are written under temp names (never matching
#: _FILE_RE, so obsolete-file sweeps ignore them) and renamed to their
#: final file number only at atomic install time
_SUB_TMP_SUFFIX = ".sst.tmp"


def table_file_name(number: int) -> str:
    return f"{number:06d}.sst"


def subcompaction_temp_name(compaction_seq: int, range_index: int, output_seq: int) -> str:
    return f"sub-{compaction_seq:04d}-{range_index:03d}-{output_seq:03d}{_SUB_TMP_SUFFIX}"


def log_file_name(number: int) -> str:
    return f"{number:06d}.log"


class Snapshot:
    """A consistent read point: sequences after it are invisible.

    Live snapshots also pause compaction, so the versions they can see
    are never merged away (a simple, safe policy — checkpoint readers
    hold snapshots briefly).  Release with :meth:`release` or use as a
    context manager.
    """

    __slots__ = ("sequence", "_db", "_released")

    def __init__(self, db: "DB", sequence: int):
        self.sequence = sequence
        self._db = db
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._db._release_snapshot(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class DBStats:
    """Lifetime counters surfaced through :attr:`DB.stats`."""

    def __init__(self) -> None:
        self.writes = 0
        self.bytes_written = 0
        self.gets = 0
        self.memtable_flushes = 0
        self.flushed_bytes = 0
        self.compactions = 0
        self.compacted_bytes = 0
        self.wal_records = 0
        self.wal_syncs = 0
        #: group-commit counters: commits that merged >1 batch, follower
        #: batches absorbed into a leader's group, and the deepest the
        #: writer queue ever got.
        self.group_commits = 0
        self.batches_merged = 0
        self.max_commit_queue_depth = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class _Writer:
    """One queued write: the batch, its options, and a parking gate."""

    __slots__ = ("batch", "sync", "disable_wal", "done", "error", "gate")

    def __init__(self, batch: WriteBatch, write_options: WriteOptions):
        self.batch = batch
        self.sync = write_options.sync
        self.disable_wal = write_options.disable_wal
        self.done = False
        self.error: Optional[BaseException] = None
        from repro.sim.locks import AdaptiveEvent

        self.gate = AdaptiveEvent()


_DEFAULT_WRITE_OPTIONS = WriteOptions()

#: LevelDB's group-size policy: cap merged groups at 1 MiB, but never let
#: a small leader wait behind more than 128 KiB of followers.
_MAX_GROUP_BYTES = 1 << 20
_SMALL_LEADER_BYTES = 128 << 10


class DB:
    """An embedded LSM-tree key/value database."""

    #: quiet polls a *running* compaction is granted at the stop trigger
    #: before the parked write is admitted anyway (a hung compaction
    #: must degrade to slow writes, not an unbounded park)
    _STALL_MAX_STALE_POLLS = 256

    def __init__(self) -> None:
        raise TypeError("use DB.open()")

    @classmethod
    def open(
        cls,
        dbname: str,
        options: Optional[Options] = None,
        env: Optional[Env] = None,
        executor: Optional[Executor] = None,
    ) -> "DB":
        """Open (creating if configured) the database at ``dbname``."""
        self = object.__new__(cls)
        self._options = options or Options()
        self._env = env or LocalFsEnv(use_mmap_reads=self._options.use_mmap_reads)
        self._dbname = dbname
        self._executor = executor or SyncExecutor()
        self._owns_executor = executor is None
        # Re-entrant and safe to hold across simulated I/O (manifest and
        # WAL writes happen under it) — see repro.sim.locks.
        from repro.sim.locks import AdaptiveRLock

        self._lock = AdaptiveRLock()
        self._closed = False
        self.stats = DBStats()
        metrics = _trace.METRICS
        if metrics is not None:
            metrics.register(f"lsm.db.{dbname}", self.stats)
        # Group commit (LevelDB's writer queue): concurrent writers park
        # here; the queue head leads, merging follower batches into one
        # WAL record + one memtable apply.
        self._writer_queue: deque[_Writer] = deque()
        self._queue_lock = AdaptiveRLock()
        self._group_batch = WriteBatch()  # leader-only scratch
        self._wal_scratch = bytearray()  # leader-only WAL encode buffer
        self._mem = MemTable(seed=0)
        self._imm: list[MemTable] = []
        self._wal: Optional[LogWriter] = None
        self._wal_number = 0
        self._obsolete_wals: list[int] = []
        self._table_cache = LRUCache(self._options.max_open_files)
        self._block_cache = LRUCache(self._options.block_cache_capacity)
        self._mem_seed = 1
        self._snapshots: list[Snapshot] = []
        self._compacting = False
        self.compaction_stats = CompactionStats()
        if metrics is not None:
            metrics.register(f"lsm.compaction.{dbname}", self.compaction_stats)
        self._compaction_seq = 0
        # The stop-park progress guard also watches the I/O scheduler's
        # COMPACTION-class counters (when the env exposes one): a long
        # merge only bumps DB counters at install time, but its RPCs
        # move the scheduler's continuously.
        self._io_sched = getattr(
            getattr(self._env, "client", None), "scheduler", None
        )
        self._pacer: Optional[CompactionPacer] = None
        if self._options.compaction_pacing and self._options.enable_compaction:
            self._pacer = CompactionPacer(
                self._options,
                stats=self.compaction_stats,
                scheduler=self._io_sched,
            )

        self._env.create_dir(dbname)
        # Exclusive advisory lock: two live DB handles on one directory
        # would corrupt the manifest (LevelDB's LOCK file).
        self._db_lock_token = self._env.lock_file(
            self._env.join(dbname, "LOCK")
        )
        self._versions = VersionSet(self._env, dbname, self._options.num_levels)
        current_exists = self._env.file_exists(
            self._env.join(dbname, "CURRENT")
        )
        if current_exists:
            if self._options.error_if_exists:
                raise InvalidArgumentError(f"database exists: {dbname}")
            self._versions.recover()
            # Leftover subcompaction partials from a crashed run are
            # never referenced by the manifest; drop them before replay.
            # (A freshly created DB can't have any — skipping the scan
            # there keeps the clean-open timing unchanged.)
            for name in self._env.get_children(dbname):
                if name.endswith(_SUB_TMP_SUFFIX):
                    self._env.delete_file(self._env.join(dbname, name))
            self._replay_wals()
        else:
            if not self._options.create_if_missing:
                raise NotFoundError(f"database missing: {dbname}")
            self._versions.create()
        self._roll_wal()
        if current_exists and self._options.enable_wal:
            # Every pre-existing log was either replayed-and-flushed or
            # empty; advance the manifest's log boundary past them.
            self._versions.log_and_apply(VersionEdit(log_number=self._wal_number))
            self._remove_obsolete_files()
        sampler = _trace.SAMPLER
        if sampler is not None:
            sampler.register(
                f"lsm.{dbname}.memtable_bytes",
                lambda db=self: db._mem.approximate_memory_usage(),
            )
            sampler.register(
                f"lsm.{dbname}.pending_l0",
                lambda db=self: db._pending_l0(),
            )
            if self._pacer is not None:
                sampler.register(
                    f"lsm.{dbname}.compaction_debt",
                    lambda db=self: db._pacer.compaction_debt(
                        db._versions.current
                    ),
                )
        return self

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _replay_wals(self) -> None:
        """Re-apply batches from log segments >= the manifest's log number."""
        numbers = []
        for name in self._env.get_children(self._dbname):
            match = _FILE_RE.match(name)
            if match and match.group(2) == "log":
                number = int(match.group(1))
                if number >= self._versions.log_number:
                    numbers.append(number)
        for number in sorted(numbers):
            path = self._env.join(self._dbname, log_file_name(number))
            reader = LogReader(
                self._env.new_sequential_file(path),
                checksum=self._options.checksum,
                allow_partial=True,
            )
            try:
                for record in reader:
                    batch, sequence = WriteBatch.deserialize(record)
                    self._apply_to_memtable(batch, sequence)
                    self._versions.last_sequence = max(
                        self._versions.last_sequence,
                        sequence + len(batch) - 1,
                    )
                    if (
                        self._mem.approximate_memory_usage()
                        >= self._options.write_buffer_size
                    ):
                        self._freeze_memtable(roll_wal=False)
            finally:
                reader.close()
            self._obsolete_wals.append(number)
        # Flush whatever the replay accumulated so the logs can be dropped.
        if len(self._mem) or self._imm:
            self._freeze_memtable(roll_wal=False)
        self._executor.drain()
        self._remove_obsolete_files()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def put(
        self, key: bytes, value: bytes, write_options: Optional[WriteOptions] = None
    ) -> None:
        """Set ``key`` to ``value`` (overwriting)."""
        batch = WriteBatch()
        batch.put(key, value)
        self.write(batch, write_options)

    def append(
        self, key: bytes, value: bytes, write_options: Optional[WriteOptions] = None
    ) -> None:
        """Append ``value`` to the existing value of ``key`` (merge op)."""
        batch = WriteBatch()
        batch.merge(key, value)
        self.write(batch, write_options)

    def delete(
        self, key: bytes, write_options: Optional[WriteOptions] = None
    ) -> None:
        """Remove ``key`` (tombstone insert)."""
        batch = WriteBatch()
        batch.delete(key)
        self.write(batch, write_options)

    def write(
        self, batch: WriteBatch, write_options: Optional[WriteOptions] = None
    ) -> None:
        """Apply ``batch`` atomically (group commit).

        Concurrent writers enqueue; the queue head becomes the *leader*,
        merges compatible follower batches into one WAL append + one
        memtable apply, and wakes the followers with the shared outcome —
        LevelDB's writer-queue pattern.  A commit failure is attributed to
        every batch in the merged group: each enqueuing caller observes
        the same exception.
        """
        write_options = write_options or _DEFAULT_WRITE_OPTIONS
        if len(batch) == 0:
            return
        self._maybe_stall_write()
        writer = _Writer(batch, write_options)
        with self._queue_lock:
            queue = self._writer_queue
            queue.append(writer)
            depth = len(queue)
            if depth > self.stats.max_commit_queue_depth:
                self.stats.max_commit_queue_depth = depth
            leads = queue[0] is writer
        if not leads:
            tracer = _trace.TRACER
            tele = _trace.TELEMETRY
            start = self._stall_clock() if tele is not None else 0.0
            stall = None
            if tracer is not None:
                stall = tracer.span("lsm", "commit_stall", depth=depth)
            try:
                writer.gate.wait()
            finally:
                if tele is not None:
                    tele.observe(
                        "lsm.commit_stall", self._stall_clock() - start
                    )
                if stall is not None:
                    stall.finish()
            if writer.done:
                if writer.error is not None:
                    raise writer.error
                return
            # Woken with done unset: the previous leader handed the queue
            # head to us — fall through and lead our own group.
        with self._lock:
            with self._queue_lock:
                group = self._build_group(writer)
            error: Optional[BaseException] = None
            try:
                self._check_open()
                self._commit_group(group)
            except BaseException as exc:  # attributed to the whole group
                error = exc
            with self._queue_lock:
                for _ in group:
                    self._writer_queue.popleft()
                next_leader = (
                    self._writer_queue[0] if self._writer_queue else None
                )
            for member in group:
                member.done = True
                member.error = error
                if member is not writer:
                    member.gate.set()
            if next_leader is not None:
                next_leader.gate.set()
        if error is not None:
            raise error

    def _build_group(self, leader: _Writer) -> list[_Writer]:
        """Collect the leader's group from the queue front (queue locked).

        Followers join while the merged size stays within LevelDB's
        policy and their options are compatible: the WAL decision must
        match, and a sync follower never rides a non-sync leader (its
        durability guarantee would silently weaken).
        """
        group = [leader]
        size = leader.batch.approximate_size
        max_size = _MAX_GROUP_BYTES
        if size <= _SMALL_LEADER_BYTES:
            max_size = size + _SMALL_LEADER_BYTES
        for follower in islice(self._writer_queue, 1, None):
            if follower.disable_wal != leader.disable_wal:
                break
            if follower.sync and not leader.sync:
                break
            size += follower.batch.approximate_size
            if size > max_size:
                break
            group.append(follower)
        return group

    def _commit_group(self, group: list[_Writer]) -> None:
        """One WAL append + one memtable apply for the whole group."""
        tracer = _trace.TRACER
        tele = _trace.TELEMETRY
        start = _trace.ambient_clock() if tele is not None else 0.0
        try:
            if tracer is not None:
                span = tracer.span("lsm", "commit", group=len(group))
                try:
                    self._commit_group_inner(group, span)
                finally:
                    span.finish()
            else:
                self._commit_group_inner(group, None)
        finally:
            if tele is not None:
                tele.observe("lsm.commit", _trace.ambient_clock() - start)

    def _commit_group_inner(self, group: list[_Writer], span) -> None:
        leader = group[0]
        if len(group) == 1:
            batch = leader.batch
        else:
            batch = self._group_batch
            batch.clear()
            for member in group:
                batch.merge_from(member.batch)
            self.stats.group_commits += 1
            self.stats.batches_merged += len(group) - 1
        sequence = self._versions.last_sequence + 1
        self._versions.last_sequence += len(batch)
        use_wal = self._options.enable_wal and not leader.disable_wal
        if span is not None:
            span.set(nbytes=batch.payload_bytes, wal=use_wal)
        if use_wal:
            scratch = self._wal_scratch
            del scratch[:]
            self._wal.add_record(batch.serialize_into(scratch, sequence))
            self.stats.wal_records += 1
            if any(member.sync for member in group):
                self._wal.sync()
                self.stats.wal_syncs += 1
        self._apply_to_memtable(batch, sequence)
        self.stats.writes += len(batch)
        self.stats.bytes_written += batch.payload_bytes
        if self._options.cpu_charge is not None:
            # Charge per constituent batch, not per merged group, so the
            # modeled CPU cost (and simulated timings) of aggregated
            # writes is identical to committing them individually.
            for charge in batch.charge_sizes():
                self._options.cpu_charge(charge, "memtable-insert")
        if (
            self._mem.approximate_memory_usage()
            >= self._options.write_buffer_size
        ):
            self._freeze_memtable(roll_wal=True)

    def _apply_to_memtable(self, batch: WriteBatch, sequence: int) -> None:
        for offset, (vtype, key, value) in enumerate(batch.items()):
            self._mem.add(sequence + offset, vtype, key, value)

    # ------------------------------------------------------------------
    # Write stalls (slowdown/stop triggers + stall-aware pacing)
    # ------------------------------------------------------------------

    @staticmethod
    def _stall_clock() -> float:
        from repro.sim.locks import _current_sim_process

        if _current_sim_process() is not None:
            from repro import sim

            return sim.now()
        import time

        return time.monotonic()

    @staticmethod
    def _stall_sleep(seconds: float) -> None:
        from repro.sim.locks import _current_sim_process

        if _current_sim_process() is not None:
            from repro import sim

            sim.sleep(seconds)
        else:
            import time

            # Real-clock worlds cap the park so a stuck trigger degrades
            # to polling rather than a long uninterruptible sleep.
            time.sleep(min(seconds, 0.05))

    def _pending_l0(self) -> int:
        """L0 files plus frozen memtables awaiting flush.

        Each frozen memtable becomes an L0 file the moment its FLUSH job
        runs, so the stall triggers must count it already — otherwise a
        long compaction ahead of the flush queue hides the backpressure
        and the frozen queue grows without bound (RocksDB counts pending
        flushes in its write-stall decision for the same reason).
        """
        return self._versions.current.num_files(0) + len(self._imm)

    def _maybe_stall_write(self) -> None:
        """Foreground admission control before a write enters the queue.

        Runs before any lock is taken: parking here must never block the
        background compaction that resolves the pressure (it needs
        ``self._lock`` to install its result).  Three regimes, mirroring
        RocksDB: the pacer's smooth quadratic delay below the triggers,
        a ramping delay in the slowdown band, and a bounded park at the
        stop trigger.
        """
        options = self._options
        if not options.enable_compaction or self._closed:
            return
        l0 = self._pending_l0()
        slowdown = options.level0_slowdown_writes_trigger
        stop = options.level0_stop_writes_trigger
        pacer = self._pacer
        if pacer is not None:
            # Re-derive pressure on every admission, not just at version
            # installs: backlog accumulates *during* a long merge (frozen
            # memtables pile up behind it), and a controller that only
            # samples at install boundaries oscillates into the slowdown
            # band once per compaction cycle.  observe() is a pure
            # function of the version shape, so this stays deterministic.
            pacer.observe(self._versions.current, len(self._imm))
        delay = pacer.write_delay() if pacer is not None else 0.0
        if l0 < slowdown and delay <= 0.0:
            return
        stats = self.compaction_stats
        tracer = _trace.TRACER
        if l0 >= stop:
            stats.stop_writes += 1
            span = (
                tracer.span("lsm", "write_stop", l0=l0)
                if tracer is not None
                else None
            )
            start = self._stall_clock()
            try:
                self._wait_for_compaction_progress(stop)
            finally:
                waited = self._stall_clock() - start
                stats.stall_time += waited
                tele = _trace.TELEMETRY
                if tele is not None:
                    tele.observe("lsm.stall", waited)
                if span is not None:
                    span.finish()
            l0 = self._pending_l0()
            if pacer is not None:
                pacer.observe(self._versions.current, len(self._imm))
            delay = pacer.write_delay() if pacer is not None else 0.0
        in_band = l0 >= slowdown
        if in_band:
            # Hard slowdown band: ramp from the configured delay toward
            # the stop trigger regardless of the pacer's smooth curve.
            ramp = (l0 - slowdown + 1) / max(1, stop - slowdown)
            delay = max(delay, options.slowdown_delay * min(1.0, ramp))
        if delay > 0.0:
            # Below the band the delay is the pacer's deliberate smooth
            # spreading, not a stall — traced under its own name so
            # stall-window accounting only counts involuntary waits.
            if in_band:
                stats.slowdown_writes += 1
            span = (
                tracer.span(
                    "lsm",
                    "write_slowdown" if in_band else "pacer_delay",
                    l0=l0,
                )
                if tracer is not None
                else None
            )
            try:
                self._stall_sleep(delay)
            finally:
                if span is not None:
                    span.finish()
            if in_band:
                stats.stall_time += delay
            if pacer is not None:
                stats.pacer_delay_time += delay
            tele = _trace.TELEMETRY
            if tele is not None:
                tele.observe(
                    "lsm.stall" if in_band else "lsm.pacer_delay", delay
                )

    def _wait_for_compaction_progress(self, stop: int) -> None:
        """Park until L0 drops below the stop trigger or progress ceases.

        The progress guard prevents a deadlock when nothing can advance:
        under a synchronous executor the compaction already ran inline
        before this write, and a failed background job surfaces at the
        next barrier — in both cases parking forever would hang, so the
        write is admitted once polling observes no forward progress (a
        running compaction is granted a bounded number of quiet polls).
        DB counters only move at install time, so when the env exposes
        an I/O scheduler its COMPACTION-class counters join the marker —
        a long bandwidth-capped merge keeps the park alive as long as
        its RPCs keep flowing.
        """
        poll = self._options.stall_poll_interval
        sched = getattr(self._io_sched, "stats", None)

        def marker():
            state = (
                self.stats.compactions,
                self.stats.memtable_flushes,
                self._versions.current.num_files(0),
            )
            if sched is not None:
                state += (
                    sched.class_bytes["compaction"],
                    sched.class_issued["compaction"],
                )
            return state

        stale = 0
        while True:
            if self._pending_l0() < stop:
                return
            before = marker()
            self._stall_sleep(poll)
            if self._pending_l0() < stop:
                return
            if marker() != before:
                stale = 0
                continue
            stale += 1
            if stale >= self._STALL_MAX_STALE_POLLS or not self._compacting:
                return

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def _roll_wal(self) -> None:
        if not self._options.enable_wal:
            return
        if self._wal is not None:
            self._wal.close()
            self._obsolete_wals.append(self._wal_number)
        self._wal_number = self._versions.new_file_number()
        path = self._env.join(self._dbname, log_file_name(self._wal_number))
        self._wal = LogWriter(
            self._env.new_writable_file(path), checksum=self._options.checksum
        )

    def _freeze_memtable(self, roll_wal: bool) -> None:
        """Move the active memtable to the frozen queue and schedule flush."""
        if not len(self._mem):
            return
        frozen = self._mem
        self._imm.append(frozen)
        tracer = _trace.TRACER
        if tracer is not None:
            tracer.instant(
                "lsm", "memtable_freeze",
                nbytes=frozen.approximate_memory_usage(),
                frozen=len(self._imm),
            )
        self._mem = MemTable(seed=self._mem_seed)
        self._mem_seed += 1
        min_log = None
        if roll_wal:
            self._roll_wal()
            if self._options.enable_wal:
                # Logs older than the fresh segment are covered by this
                # flush; recording the boundary in the manifest keeps
                # crash-recovery from replaying (and double-applying
                # append operands from) already-flushed batches.
                min_log = self._wal_number
        wal_to_retire = self._obsolete_wals[:]
        file_number = self._versions.new_file_number()
        self._executor.submit(
            lambda: self._flush_job(frozen, file_number, wal_to_retire, min_log),
            priority=Priority.FLUSH,
        )

    def _flush_job(
        self,
        frozen: MemTable,
        file_number: int,
        retired_wals: list[int],
        min_log: Optional[int] = None,
    ) -> None:
        """Write one frozen memtable as an L0 SSTable and install it."""
        tracer = _trace.TRACER
        tele = _trace.TELEMETRY
        start = _trace.ambient_clock() if tele is not None else 0.0
        span = None
        if tracer is not None:
            span = tracer.span("lsm", "memtable_flush", file=file_number)
        try:
            path = self._env.join(self._dbname, table_file_name(file_number))
            dest = self._env.new_writable_file(path)
            builder = TableBuilder(self._options, dest)
            for ikey, value in frozen.entries():
                builder.add(ikey, value)
            size = builder.finish()
            dest.sync()
            dest.close()
            if span is not None:
                span.set(nbytes=size)
            meta = FileMetaData(
                number=file_number,
                file_size=size,
                smallest=builder.first_key,
                largest=builder.last_key,
            )
            with self._lock:
                edit = VersionEdit(log_number=min_log)
                edit.add_file(0, meta)
                self._versions.log_and_apply(edit)
                if frozen in self._imm:
                    self._imm.remove(frozen)
                self.stats.memtable_flushes += 1
                self.stats.flushed_bytes += size
                for number in retired_wals:
                    if number in self._obsolete_wals:
                        self._obsolete_wals.remove(number)
                    self._delete_if_exists(log_file_name(number))
                if self._pacer is not None:
                    self._pacer.observe(self._versions.current, len(self._imm))
        finally:
            if tele is not None:
                tele.observe("lsm.flush", _trace.ambient_clock() - start)
            if span is not None:
                span.finish()
        if self._options.enable_compaction:
            # Separate job, separate service class: a write barrier can
            # drain FLUSH work without waiting for the compaction debt.
            self._executor.submit(
                self._maybe_compact, priority=Priority.COMPACTION
            )

    def flush(self, wait: bool = True) -> None:
        """Flush buffered writes to SSTables (LSMIO's write barrier body)."""
        with self._lock:
            self._check_open()
            self._freeze_memtable(roll_wal=True)
        if wait:
            self._executor.drain()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _maybe_compact(self) -> None:
        # Single-compactor guard: the background COMPACTION job and the
        # inline callers (compact_range, snapshot release) may overlap
        # under a threaded executor; whoever arrives second defers to the
        # running loop, which re-picks until no level is over budget.
        with self._lock:
            if self._compacting:
                return
            self._compacting = True
        try:
            while True:
                with self._lock:
                    if self._snapshots:
                        # Live snapshots pin every visible version; defer.
                        return
                    task = pick_compaction(self._versions.current, self._options)
                    if task is None:
                        return
                    drop = is_bottommost(self._versions.current, task)
                self._run_compaction(task, drop)
        finally:
            with self._lock:
                self._compacting = False

    def compact_range(self) -> None:
        """Manually compact until no level is over budget."""
        with self._lock:
            self._check_open()
        self.flush()
        # flush() drained every class (including the compaction job the
        # flush chained); one inline pass covers the compaction-disabled
        # configuration where no background job was submitted.
        self._maybe_compact()

    def _run_compaction(self, task, drop_tombstones: bool) -> None:
        with io_priority(Priority.COMPACTION):
            self._run_compaction_inner(task, drop_tombstones)

    @staticmethod
    def _sim_engine():
        """The ambient sim engine, or None outside the simulation."""
        try:
            from repro import sim

            return sim.current_engine()
        except Exception:
            return None

    def _index_user_keys(self, meta: FileMetaData) -> Optional[list]:
        """Index-block separator keys for the planner (None on failure)."""
        try:
            return self._table(meta.number).index_user_keys()
        except Exception:
            return None  # planner falls back to file-boundary candidates

    def _make_compaction_executor(self, compaction_seq: int = 0) -> CompactionExecutor:
        def open_table_iter(meta: FileMetaData):
            return iter(self._table(meta.number))

        def open_table_seek(meta: FileMetaData, lo_ikey: bytes):
            return self._table(meta.number).seek(lo_ikey)

        def new_table_writer():
            # Serial path: the output takes its final number immediately.
            with self._lock:
                number = self._versions.new_file_number()
            path = self._env.join(self._dbname, table_file_name(number))
            dest = self._env.new_writable_file(path)
            builder = TableBuilder(self._options, dest)

            def finalize(b: TableBuilder) -> int:
                size = b.finish()
                dest.sync()
                dest.close()
                return size

            return number, builder, finalize

        def new_range_writer(range_index: int, output_seq: int):
            # Partitioned path: write under a temp name (numbered and
            # renamed in key order at install — execution order must not
            # influence file numbering) behind the CPU/I-O pipeline.
            temp = subcompaction_temp_name(
                compaction_seq, range_index, output_seq
            )
            path = self._env.join(self._dbname, temp)
            dest = PipelinedTableFile(
                self._env.new_writable_file(path),
                engine=self._sim_engine(),
                limit=self._options.compaction_pipeline_bytes,
                cpu_charge=self._options.cpu_charge,
                stats=self.compaction_stats,
            )
            builder = TableBuilder(self._options, dest)

            def finalize(b: TableBuilder) -> int:
                size = b.finish()
                dest.sync()
                dest.close()
                return size

            return temp, builder, finalize

        return CompactionExecutor(
            self._options,
            open_table_iter,
            new_table_writer,
            open_table_seek=open_table_seek,
            new_range_writer=new_range_writer,
            stats=self.compaction_stats,
        )

    def _run_compaction_inner(self, task, drop_tombstones: bool) -> None:
        plan = plan_compaction(
            self._versions.current,
            task,
            self._options,
            drop_tombstones,
            index_user_keys=self._index_user_keys,
        )
        cstats = self.compaction_stats
        cstats.planned_boundaries += len(plan.boundaries)
        cstats.grandparent_seals += plan.grandparent_seals
        tracer = _trace.TRACER
        tele = _trace.TELEMETRY
        start = _trace.ambient_clock() if tele is not None else 0.0
        span = None
        if tracer is not None:
            span = tracer.span(
                "lsm", "compaction", level=task.level,
                nbytes=task.total_bytes(),
            )
        try:
            if plan.boundaries:
                self._run_partitioned(plan, span)
            else:
                executor = self._make_compaction_executor()
                edit = executor.run(task, drop_tombstones)
                with self._lock:
                    self._versions.log_and_apply(edit)
                    self.stats.compactions += 1
                    self.stats.compacted_bytes += task.total_bytes()
                    self._remove_obsolete_files()
                    if self._pacer is not None:
                        self._pacer.observe(self._versions.current, len(self._imm))
        finally:
            if tele is not None:
                tele.observe(
                    "lsm.compaction", _trace.ambient_clock() - start
                )
            if span is not None:
                span.finish()

    def _run_partitioned(self, plan: CompactionPlan, span) -> None:
        """Execute a planned compaction as parallel key-range partitions.

        Ranges are grouped contiguously onto ``fanout`` jobs, each run
        via the executor's ``run_jobs`` fan-out (concurrent sim
        processes under :class:`~repro.sim.executor.SimExecutor`,
        sequential elsewhere).  Outputs land as temp files; install then
        assigns file numbers in (range, output) key order, renames, and
        applies one merged :class:`VersionEdit` — making the result
        byte-identical to the serial merge for every fan-out.
        """
        task = plan.task
        self._compaction_seq += 1
        executor = self._make_compaction_executor(self._compaction_seq)
        ranges = plan.ranges
        fanout = self._options.max_subcompactions
        if self._pacer is not None:
            # Re-derive pressure from the version as of *now*: the last
            # observation happened at the previous install, and pressure
            # is typically low right after one — while a compaction only
            # starts because pressure built back up since.
            self._pacer.observe(self._versions.current, len(self._imm))
            fanout = max(1, min(fanout, self._pacer.fanout))
        if span is not None:
            span.set(ranges=len(ranges), fanout=fanout)
        outputs_by_range: dict[int, list] = {}

        def make_job(group):
            def job() -> None:
                for rng in group:
                    outputs_by_range[rng.index] = executor.run_range(
                        task, rng, plan.drop_tombstones
                    )

            return job

        self._executor.run_jobs(
            [make_job(group) for group in group_ranges(ranges, fanout)],
            priority=Priority.COMPACTION,
        )

        with self._lock:
            range_edits = []
            output_bytes = 0
            for index in sorted(outputs_by_range):
                edit = VersionEdit()
                for out in outputs_by_range[index]:
                    number = self._versions.new_file_number()
                    self._env.rename_file(
                        self._env.join(self._dbname, out.temp_name),
                        self._env.join(self._dbname, table_file_name(number)),
                    )
                    edit.add_file(
                        task.target_level,
                        FileMetaData(
                            number=number,
                            file_size=out.file_size,
                            smallest=out.smallest,
                            largest=out.largest,
                        ),
                    )
                    output_bytes += out.file_size
                range_edits.append(edit)
            delete_edit = VersionEdit()
            for meta in task.inputs[0]:
                delete_edit.delete_file(task.level, meta.number)
            for meta in task.inputs[1]:
                delete_edit.delete_file(task.target_level, meta.number)
            self._versions.log_and_apply(
                VersionEdit.merged(range_edits + [delete_edit])
            )
            self.stats.compactions += 1
            self.stats.compacted_bytes += task.total_bytes()
            cstats = self.compaction_stats
            cstats.parallel_compactions += 1
            cstats.sub_input_bytes += task.total_bytes()
            cstats.sub_output_bytes += output_bytes
            self._remove_obsolete_files()
            if self._pacer is not None:
                self._pacer.observe(self._versions.current, len(self._imm))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _table(self, file_number: int) -> Table:
        table = self._table_cache.get(file_number)
        if table is None:
            path = self._env.join(self._dbname, table_file_name(file_number))
            table = Table(
                self._options,
                self._env.new_random_access_file(path),
                file_number=file_number,
                block_cache=self._block_cache,
            )
            self._table_cache.insert(file_number, table, 1)
        return table

    def snapshot(self) -> Snapshot:
        """Capture a consistent read point at the current sequence."""
        with self._lock:
            self._check_open()
            snap = Snapshot(self, self._versions.last_sequence)
            self._snapshots.append(snap)
            return snap

    def _release_snapshot(self, snap: Snapshot) -> None:
        with self._lock:
            if snap in self._snapshots:
                self._snapshots.remove(snap)
        if self._options.enable_compaction:
            self._maybe_compact()

    def multi_get(
        self,
        keys,
        read_options: Optional[ReadOptions] = None,
    ) -> dict:
        """Batch lookup: {key: value-or-None} (None = absent).

        The batch form exists for the paper's §5.1 read-path future work
        ("batch read of the variables from the LSM-Tree"): keys are probed
        in sorted order, so block/readahead locality is sequential rather
        than random.
        """
        out = {}
        for key in sorted(set(bytes(k) for k in keys)):
            try:
                out[key] = self.get(key, read_options)
            except NotFoundError:
                out[key] = None
        return out

    def get(
        self, key: bytes, read_options: Optional[ReadOptions] = None
    ) -> bytes:
        """Return the value for ``key``; raises :class:`NotFoundError`."""
        read_options = read_options or ReadOptions()
        max_seq = (
            read_options.snapshot.sequence
            if read_options.snapshot is not None
            else MAX_SEQUENCE
        )
        with self._lock:
            self._check_open()
            self.stats.gets += 1
            memtables = [self._mem] + list(reversed(self._imm))
            version = self._versions.current

        operands: list[bytes] = []  # newest-first merge operands
        for mem in memtables:
            result = mem.get(key, max_sequence=max_seq)
            if result.state == "found":
                if operands:
                    return result.value + b"".join(reversed(operands))
                return result.value
            if result.state == "deleted":
                if operands:
                    return b"".join(reversed(operands))
                raise NotFoundError(f"key not found: {key!r}")
            if result.state == "merge":
                # memtable returned operands oldest→newest; we accumulate
                # newest-first, so extend with them reversed.
                operands.extend(reversed(result.operands))

        for _, meta in version.files_for_get(key):
            table = self._table(meta.number)
            if not table.may_contain(key):
                continue
            outcome = self._search_table(
                table, key, operands, read_options, max_seq
            )
            if outcome is not None:
                state, value = outcome
                if state == "found":
                    return value
                raise NotFoundError(f"key not found: {key!r}")

        if operands:
            return b"".join(reversed(operands))
        raise NotFoundError(f"key not found: {key!r}")

    def _search_table(
        self,
        table: Table,
        user_key: bytes,
        operands: list[bytes],
        read_options: ReadOptions,
        max_seq: int = MAX_SEQUENCE,
    ) -> Optional[tuple[str, bytes]]:
        """Scan one table's version chain for ``user_key``.

        Mutates ``operands`` (newest-first accumulator).  Returns
        ("found", value) / ("deleted", b"") to terminate, or None to
        continue into older tables.
        """
        for ikey, value in table.seek(seek_key(user_key, max_seq), read_options):
            parsed = decode_internal_key(ikey)
            if parsed.user_key != user_key:
                break
            if parsed.value_type is ValueType.VALUE:
                full = value + b"".join(reversed(operands)) if operands else value
                return ("found", full)
            if parsed.value_type is ValueType.DELETE:
                if operands:
                    return ("found", b"".join(reversed(operands)))
                return ("deleted", b"")
            operands.append(value)
        return None

    def __contains__(self, key: bytes) -> bool:
        try:
            self.get(key)
            return True
        except NotFoundError:
            return False

    def iterate(
        self,
        start: Optional[bytes] = None,
        stop: Optional[bytes] = None,
        read_options: Optional[ReadOptions] = None,
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield user-visible (key, value) pairs with start <= key <= stop."""
        read_options = read_options or ReadOptions()
        max_seq = (
            read_options.snapshot.sequence
            if read_options.snapshot is not None
            else MAX_SEQUENCE
        )
        with self._lock:
            self._check_open()
            memtables = [self._mem] + list(reversed(self._imm))
            version = self._versions.current

        lo_ikey = seek_key(start if start is not None else b"", max_seq)
        streams = [mem.seek(lo_ikey) for mem in memtables]
        level0 = sorted(version.files[0], key=lambda f: f.number, reverse=True)
        for meta in level0:
            streams.append(self._table(meta.number).seek(lo_ikey, read_options))
        for level in range(1, version.num_levels):
            files = version.files[level]
            if files:
                streams.append(self._level_stream(files, lo_ikey, read_options))

        merged = MergingIterator(streams)
        if max_seq != MAX_SEQUENCE:
            merged = (
                (ikey, value)
                for ikey, value in merged
                if decode_internal_key(ikey).sequence <= max_seq
            )
        for key, value in resolve_user_entries(merged, stop_after_user_key=stop):
            if start is not None and key < start:
                continue
            if stop is not None and key > stop:
                return
            yield key, value

    def _level_stream(self, files, lo_ikey: bytes, read_options: ReadOptions):
        """Chain a sorted level's tables, starting at ``lo_ikey``."""
        started = False
        lo_user = lo_ikey[:-8]
        for meta in files:
            if not started and meta.largest_user_key < lo_user:
                continue
            table = self._table(meta.number)
            if not started:
                started = True
                yield from table.seek(lo_ikey, read_options)
            else:
                yield from iter(table)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _delete_if_exists(self, name: str) -> None:
        path = self._env.join(self._dbname, name)
        if self._env.file_exists(path):
            self._env.delete_file(path)

    def _remove_obsolete_files(self) -> None:
        live = self._versions.live_file_numbers()
        for name in self._env.get_children(self._dbname):
            match = _FILE_RE.match(name)
            if not match:
                continue
            number, kind = int(match.group(1)), match.group(2)
            if kind == "sst" and number not in live:
                self._table_cache.erase(number)
                self._delete_if_exists(name)
            elif kind == "log" and number != self._wal_number:
                if number < self._versions.log_number:
                    self._delete_if_exists(name)

    def approximate_level_shape(self) -> list[tuple[int, int]]:
        """(file count, total bytes) per level — for tests and ablations."""
        with self._lock:
            version = self._versions.current
            return [
                (version.num_files(level), version.level_bytes(level))
                for level in range(version.num_levels)
            ]

    @property
    def options(self) -> Options:
        return self._options

    @property
    def env(self) -> Env:
        return self._env

    @property
    def name(self) -> str:
        return self._dbname

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("database is closed")

    def close(self) -> None:
        """Flush buffered writes and release every resource."""
        with self._lock:
            if self._closed:
                return
        self.flush()
        if self._owns_executor:
            self._executor.close()
        else:
            self._executor.drain()
        with self._lock:
            self._closed = True
            if self._wal is not None:
                self._wal.sync()
                self._wal.close()
                self._wal = None
            self._versions.close()
            self._block_cache.clear()
            self._env.unlock_file(self._db_lock_token)
        # Close cached table readers.
        for number in list(self._table_cache._entries):  # noqa: SLF001
            table = self._table_cache.get(number)
            if table is not None:
                table.close()
        self._table_cache.clear()
        sampler = _trace.SAMPLER
        if sampler is not None:
            for gauge in ("memtable_bytes", "pending_l0", "compaction_debt"):
                sampler.unregister(f"lsm.{self._dbname}.{gauge}")

    def __enter__(self) -> "DB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
