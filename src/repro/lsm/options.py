"""Engine configuration.

The option set mirrors the knobs the paper turns on RocksDB (§3.1.1):

    "Disabled write-ahead log / compression / caching / compaction;
     exposed an option to write either synchronously or asynchronously;
     exposed an option to use MMAP; exposed options to customize buffer
     size ... and block size."

plus the checksum-type selection RocksDB offers (``kNoChecksum`` etc.),
which matters in pure Python because CRC cost is visible.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import InvalidArgumentError
from repro.util.crc import crc32c
from repro.util.humanize import parse_size


class CompressionType(enum.IntEnum):
    """On-disk block compression codec (byte stored in the block trailer)."""

    NONE = 0
    ZLIB = 1


class ChecksumType(enum.Enum):
    """Per-block / per-record checksum algorithm.

    ``CRC32C`` is the LevelDB/RocksDB format-faithful Castagnoli CRC
    (table-driven Python; slow on large blocks).  ``ZLIB_CRC32`` uses the
    C-accelerated CRC-32 from :mod:`zlib` (RocksDB likewise supports
    multiple checksum flavours).  ``NONE`` disables checksumming, matching
    RocksDB's ``kNoChecksum``.
    """

    NONE = "none"
    CRC32C = "crc32c"
    ZLIB_CRC32 = "zlib-crc32"

    def function(self) -> Callable[[bytes], int]:
        """Return the raw 32-bit checksum function for this type."""
        if self is ChecksumType.CRC32C:
            return crc32c
        if self is ChecksumType.ZLIB_CRC32:
            return lambda data: zlib.crc32(data) & 0xFFFFFFFF
        return lambda data: 0

    def incremental(self) -> Callable[..., int]:
        """Return ``fn(data, crc=0) -> crc`` continuing a running checksum.

        ``fn(b, fn(a)) == fn(a + b)`` for every type, which lets the WAL
        and table writers checksum (type byte ‖ payload) without first
        concatenating them.
        """
        if self is ChecksumType.CRC32C:
            return crc32c
        if self is ChecksumType.ZLIB_CRC32:
            return lambda data, crc=0: zlib.crc32(data, crc) & 0xFFFFFFFF
        return lambda data, crc=0: 0


@dataclass
class Options:
    """Database-wide options (a Python rendering of ``rocksdb::Options``)."""

    create_if_missing: bool = True
    error_if_exists: bool = False
    paranoid_checks: bool = True

    # --- the LSMIO §3.1.1 knob set -------------------------------------
    enable_wal: bool = True
    compression: CompressionType = CompressionType.NONE
    enable_block_cache: bool = True
    enable_compaction: bool = True
    use_mmap_reads: bool = False
    write_buffer_size: int = 32 << 20  # LSMIO/ADIOS2 use a 32 MB buffer.
    block_size: int = 4096
    # --------------------------------------------------------------------

    block_restart_interval: int = 16
    block_cache_capacity: int = 64 << 20
    max_open_files: int = 1000
    bloom_bits_per_key: int = 10
    checksum: ChecksumType = ChecksumType.ZLIB_CRC32

    # Compaction geometry (LevelDB defaults).
    num_levels: int = 7
    level0_file_num_compaction_trigger: int = 4
    level0_slowdown_writes_trigger: int = 8
    level0_stop_writes_trigger: int = 12
    max_bytes_for_level_base: int = 256 << 20
    max_bytes_for_level_multiplier: int = 10
    target_file_size_base: int = 64 << 20

    # --- subcompaction / stall control ---------------------------------
    #: maximum key-range partitions one compaction may run concurrently
    #: (RocksDB's ``max_subcompactions``); 1 = the serial merge.  The
    #: partition *boundaries* are fan-out independent, so any value
    #: produces byte-identical outputs — this only caps concurrency.
    max_subcompactions: int = 1
    #: seal a subcompaction output early once it overlaps more than this
    #: many grandparent bytes (0 = 10 x ``target_file_size_base``, the
    #: LevelDB ``ShouldStopBefore`` ratio) — bounds any future merge of
    #: that output into the grandparent level.
    max_grandparent_overlap_bytes: int = 0
    #: buffered output bytes per subcompaction before the merge loop
    #: blocks on the companion writer process (0 disables the CPU/I-O
    #: pipeline: appends happen inline on the merge process).
    compaction_pipeline_bytes: int = 1 << 20
    #: smooth stall-aware pacing: ramp a foreground write delay and boost
    #: the compaction rate limiter with L0/debt pressure instead of
    #: slamming into the slowdown/stop triggers.
    compaction_pacing: bool = False
    #: foreground delay (seconds) applied per write at full slowdown
    #: pressure; the pacer ramps quadratically up to this from zero.
    slowdown_delay: float = 1e-3
    #: recheck interval while parked at the stop trigger.
    stall_poll_interval: float = 1e-3

    # Hook charged with (nbytes, kind) for modeled CPU cost when running
    # under the discrete-event simulation; None outside the sim.
    cpu_charge: Optional[Callable[[int, str], None]] = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        self.write_buffer_size = parse_size(self.write_buffer_size)
        self.block_size = parse_size(self.block_size)
        self.block_cache_capacity = parse_size(self.block_cache_capacity)
        self.max_bytes_for_level_base = parse_size(self.max_bytes_for_level_base)
        self.target_file_size_base = parse_size(self.target_file_size_base)
        if isinstance(self.compression, str):
            self.compression = CompressionType[self.compression.upper()]
        if isinstance(self.checksum, str):
            self.checksum = ChecksumType(self.checksum)
        if self.write_buffer_size <= 0:
            raise InvalidArgumentError("write_buffer_size must be positive")
        if self.block_size <= 0:
            raise InvalidArgumentError("block_size must be positive")
        if self.block_restart_interval < 1:
            raise InvalidArgumentError("block_restart_interval must be >= 1")
        if self.num_levels < 2:
            raise InvalidArgumentError("num_levels must be >= 2")
        self.max_grandparent_overlap_bytes = parse_size(
            self.max_grandparent_overlap_bytes
        )
        self.compaction_pipeline_bytes = parse_size(
            self.compaction_pipeline_bytes
        )
        if self.max_subcompactions < 1:
            raise InvalidArgumentError("max_subcompactions must be >= 1")
        if not (
            0
            < self.level0_file_num_compaction_trigger
            <= self.level0_slowdown_writes_trigger
            <= self.level0_stop_writes_trigger
        ):
            raise InvalidArgumentError(
                "level0 triggers must satisfy "
                "0 < compaction <= slowdown <= stop"
            )
        if self.slowdown_delay < 0 or self.stall_poll_interval <= 0:
            raise InvalidArgumentError(
                "slowdown_delay must be >= 0 and stall_poll_interval > 0"
            )

    def max_bytes_for_level(self, level: int) -> float:
        """Size budget for ``level`` (L1 = base, ×multiplier per level)."""
        if level < 1:
            raise InvalidArgumentError("levels below 1 have no byte budget")
        return self.max_bytes_for_level_base * (
            self.max_bytes_for_level_multiplier ** (level - 1)
        )


@dataclass
class WriteOptions:
    """Per-write options (``rocksdb::WriteOptions``).

    ``sync`` forces an fsync of the WAL after the write.  ``disable_wal``
    skips the log for this write even when the database-wide WAL is on —
    exactly the RocksDB option LSMIO uses, justified because a write
    barrier is called at checkpoint end (§3.1.1).
    """

    sync: bool = False
    disable_wal: bool = False


@dataclass
class ReadOptions:
    """Per-read options (``rocksdb::ReadOptions``).

    ``snapshot`` pins the read to a :meth:`repro.lsm.db.DB.snapshot`
    point: updates sequenced after it are invisible.
    """

    verify_checksums: bool = True
    fill_cache: bool = True
    snapshot: Optional[object] = None
