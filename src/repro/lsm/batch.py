"""Atomic write batches (LevelDB's ``WriteBatch``).

A batch is both the unit of atomicity and the WAL payload: the serialized
form is ``fixed64 sequence ‖ fixed32 count ‖ records``, each record being a
type byte plus length-prefixed key (and value for puts/merges).

Batching is also how the paper's *LevelDB backend* aggregates writes:
LevelDB cannot disable its WAL, so LSMIO buffers updates in a
``WriteBatch`` and applies them at the write barrier (§3.1.2).  The
RocksDB-style backend writes through directly instead.  Both behaviours
live in :mod:`repro.core.store`.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CorruptionError
from repro.lsm.dbformat import ValueType
from repro.util.varint import (
    decode_fixed32,
    decode_fixed64,
    decode_varint32,
    encode_fixed32,
    encode_fixed64,
    encode_varint32,
)

_HEADER_SIZE = 12


class WriteBatch:
    """An ordered collection of put/merge/delete operations."""

    def __init__(self):
        self._ops: list[tuple[ValueType, bytes, bytes]] = []
        self._byte_size = _HEADER_SIZE
        self._payload_bytes = 0
        # Group-commit accounting: serialized size of each constituent
        # batch (or charge segment), so a merged group can be charged
        # exactly as its members would have been individually.
        self._sub_sizes: list[int] = []
        self._charged_upto = _HEADER_SIZE

    def put(self, key: bytes, value: bytes) -> None:
        """Queue a full-value write."""
        self._append(ValueType.VALUE, key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        """Queue an append operand (LSMIO's ``append()``)."""
        self._append(ValueType.MERGE, key, operand)

    def delete(self, key: bytes) -> None:
        """Queue a tombstone."""
        self._append(ValueType.DELETE, key, b"")

    def _append(self, vtype: ValueType, key: bytes, value: bytes) -> None:
        key = bytes(key)
        value = bytes(value)
        self._ops.append((vtype, key, value))
        self._byte_size += 1 + 5 + len(key) + (5 + len(value) if vtype != ValueType.DELETE else 0)
        self._payload_bytes += len(key) + len(value)

    def clear(self) -> None:
        self._ops.clear()
        self._byte_size = _HEADER_SIZE
        self._payload_bytes = 0
        self._sub_sizes.clear()
        self._charged_upto = _HEADER_SIZE

    # -- group commit ---------------------------------------------------

    def merge_from(self, other: "WriteBatch") -> None:
        """Append every operation of ``other`` (group-commit merge).

        Operation tuples are shared, not copied — batches are treated as
        frozen once queued for commit.  ``other`` keeps its charge
        structure: its segments are appended to this batch's, so a merged
        group charges modeled CPU exactly as its members would have
        individually.
        """
        self.add_charge_boundary()  # seal our own tail as one segment
        self._ops.extend(other._ops)
        self._byte_size += other._byte_size - _HEADER_SIZE
        self._payload_bytes += other._payload_bytes
        self._sub_sizes.extend(other.charge_sizes())
        self._charged_upto = self._byte_size

    def add_charge_boundary(self) -> None:
        """End a charge segment at the current tail.

        Operations appended since the previous boundary form one segment,
        sized as a standalone batch of those operations would be.  Callers
        that accumulate what would otherwise be independent writes (the
        manager's put path) use this to keep modeled CPU charges —
        and therefore simulated timings — identical to unbatched writes.
        """
        if self._byte_size == self._charged_upto:
            return
        self._sub_sizes.append(
            self._byte_size - self._charged_upto + _HEADER_SIZE
        )
        self._charged_upto = self._byte_size

    def charge_sizes(self) -> list[int]:
        """Per-segment serialized sizes for modeled CPU accounting."""
        if self._charged_upto != self._byte_size:
            # Tail operations past the last explicit boundary.
            self.add_charge_boundary()
        return self._sub_sizes if self._sub_sizes else [self._byte_size]

    @property
    def payload_bytes(self) -> int:
        """Total key+value bytes across all operations."""
        return self._payload_bytes

    def __len__(self) -> int:
        """Number of queued operations."""
        return len(self._ops)

    @property
    def approximate_size(self) -> int:
        """Upper bound on the serialized size in bytes."""
        return self._byte_size

    def items(self) -> Iterator[tuple[ValueType, bytes, bytes]]:
        """Yield (type, key, value) in insertion order."""
        return iter(self._ops)

    # -- serialization (WAL payload) ------------------------------------

    def serialize_into(self, out: bytearray, sequence: int) -> bytearray:
        """Append the encoding to ``out`` (reusable scratch) and return it."""
        out += encode_fixed64(sequence)
        out += encode_fixed32(len(self._ops))
        for vtype, key, value in self._ops:
            out.append(int(vtype))
            out += encode_varint32(len(key))
            out += key
            if vtype is not ValueType.DELETE:
                out += encode_varint32(len(value))
                out += value
        return out

    def serialize(self, sequence: int) -> bytes:
        """Encode with the starting ``sequence`` number stamped in."""
        return bytes(self.serialize_into(bytearray(), sequence))

    @classmethod
    def deserialize(cls, data: bytes) -> tuple["WriteBatch", int]:
        """Decode; returns (batch, starting sequence number)."""
        if len(data) < _HEADER_SIZE:
            raise CorruptionError("write batch too small")
        sequence = decode_fixed64(data, 0)
        count = decode_fixed32(data, 8)
        batch = cls()
        pos = _HEADER_SIZE
        for _ in range(count):
            if pos >= len(data):
                raise CorruptionError("write batch truncated")
            try:
                vtype = ValueType(data[pos])
            except ValueError as exc:
                raise CorruptionError(f"bad batch op type {data[pos]}") from exc
            pos += 1
            klen, pos = decode_varint32(data, pos)
            key = data[pos : pos + klen]
            if len(key) != klen:
                raise CorruptionError("write batch key truncated")
            pos += klen
            value = b""
            if vtype is not ValueType.DELETE:
                vlen, pos = decode_varint32(data, pos)
                value = data[pos : pos + vlen]
                if len(value) != vlen:
                    raise CorruptionError("write batch value truncated")
                pos += vlen
            batch._append(vtype, bytes(key), bytes(value))
        if pos != len(data):
            raise CorruptionError("trailing bytes after write batch")
        return batch, sequence
