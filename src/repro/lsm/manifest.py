"""Versions and the manifest: which SSTables live at which level.

A :class:`Version` is an immutable snapshot of the level structure;
:class:`VersionSet` owns the current version and persists every change as
a :class:`VersionEdit` to the ``MANIFEST-N`` file (pointed at by
``CURRENT``).

Deviation from LevelDB, documented per DESIGN.md: edits are JSON-lines
rather than LevelDB's binary ``VersionEdit`` encoding.  The recovery
semantics (replay all edits in order; atomic ``CURRENT`` switch) are
identical, and JSON keeps the manifest debuggable — the format is not on
any hot path.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import CorruptionError
from repro.lsm.dbformat import internal_key_user_key
from repro.lsm.env import Env


@dataclass(frozen=True)
class FileMetaData:
    """One live SSTable."""

    number: int
    file_size: int
    smallest: bytes  # smallest internal key
    largest: bytes   # largest internal key

    @property
    def smallest_user_key(self) -> bytes:
        return internal_key_user_key(self.smallest)

    @property
    def largest_user_key(self) -> bytes:
        return internal_key_user_key(self.largest)

    def overlaps_user_range(self, lo: bytes, hi: bytes) -> bool:
        """Whether this file's user-key range intersects [lo, hi]."""
        return not (self.largest_user_key < lo or self.smallest_user_key > hi)

    def to_json(self) -> dict:
        return {
            "number": self.number,
            "file_size": self.file_size,
            "smallest": base64.b64encode(self.smallest).decode(),
            "largest": base64.b64encode(self.largest).decode(),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "FileMetaData":
        return cls(
            number=obj["number"],
            file_size=obj["file_size"],
            smallest=base64.b64decode(obj["smallest"]),
            largest=base64.b64decode(obj["largest"]),
        )


@dataclass
class VersionEdit:
    """A delta applied to the version state."""

    comparator: Optional[str] = None
    log_number: Optional[int] = None
    next_file_number: Optional[int] = None
    last_sequence: Optional[int] = None
    new_files: list[tuple[int, FileMetaData]] = field(default_factory=list)
    deleted_files: list[tuple[int, int]] = field(default_factory=list)  # (level, number)

    def add_file(self, level: int, meta: FileMetaData) -> None:
        self.new_files.append((level, meta))

    def delete_file(self, level: int, number: int) -> None:
        self.deleted_files.append((level, number))

    def to_json(self) -> str:
        obj: dict = {}
        if self.comparator is not None:
            obj["comparator"] = self.comparator
        if self.log_number is not None:
            obj["log_number"] = self.log_number
        if self.next_file_number is not None:
            obj["next_file_number"] = self.next_file_number
        if self.last_sequence is not None:
            obj["last_sequence"] = self.last_sequence
        if self.new_files:
            obj["new_files"] = [
                {"level": lvl, **meta.to_json()} for lvl, meta in self.new_files
            ]
        if self.deleted_files:
            obj["deleted_files"] = [
                {"level": lvl, "number": num} for lvl, num in self.deleted_files
            ]
        return json.dumps(obj, sort_keys=True)

    @classmethod
    def merged(cls, edits: Iterable["VersionEdit"]) -> "VersionEdit":
        """Combine per-subcompaction edits into one atomic edit.

        A partitioned compaction produces one edit per key-range
        partition; applying them one at a time would expose intermediate
        versions (and write intermediate manifest lines) that no serial
        compaction ever creates.  Merging preserves new-file order —
        partitions are emitted in key order, so the merged add-list
        matches the serial merge's — de-duplicates deletes, and refuses
        conflicting scalar fields.
        """
        out = cls()
        seen_deletes: set[tuple[int, int]] = set()
        for edit in edits:
            for name in (
                "comparator",
                "log_number",
                "next_file_number",
                "last_sequence",
            ):
                value = getattr(edit, name)
                if value is None:
                    continue
                current = getattr(out, name)
                if current is None:
                    setattr(out, name, value)
                elif current != value:
                    raise ValueError(
                        f"conflicting {name} in merged edits: "
                        f"{current!r} != {value!r}"
                    )
            for level, meta in edit.new_files:
                out.add_file(level, meta)
            for level, number in edit.deleted_files:
                if (level, number) not in seen_deletes:
                    seen_deletes.add((level, number))
                    out.delete_file(level, number)
        return out

    @classmethod
    def from_json(cls, line: str) -> "VersionEdit":
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CorruptionError(f"bad manifest line: {line!r}") from exc
        edit = cls(
            comparator=obj.get("comparator"),
            log_number=obj.get("log_number"),
            next_file_number=obj.get("next_file_number"),
            last_sequence=obj.get("last_sequence"),
        )
        for item in obj.get("new_files", []):
            edit.add_file(item["level"], FileMetaData.from_json(item))
        for item in obj.get("deleted_files", []):
            edit.delete_file(item["level"], item["number"])
        return edit


class Version:
    """Immutable snapshot of SSTables per level.

    Level 0 files may overlap each other (they are raw memtable flushes)
    and are ordered newest-first for reads.  Levels ≥ 1 hold disjoint
    user-key ranges sorted by smallest key.
    """

    def __init__(self, num_levels: int):
        self.files: list[list[FileMetaData]] = [[] for _ in range(num_levels)]

    @property
    def num_levels(self) -> int:
        return len(self.files)

    def level_bytes(self, level: int) -> int:
        return sum(f.file_size for f in self.files[level])

    def num_files(self, level: int) -> int:
        return len(self.files[level])

    def all_files(self) -> list[tuple[int, FileMetaData]]:
        return [
            (level, meta)
            for level, files in enumerate(self.files)
            for meta in files
        ]

    def overlapping_files(
        self, level: int, lo: bytes, hi: bytes
    ) -> list[FileMetaData]:
        """Files at ``level`` whose user-key range intersects [lo, hi]."""
        return [f for f in self.files[level] if f.overlaps_user_range(lo, hi)]

    def files_for_get(self, user_key: bytes) -> list[tuple[int, FileMetaData]]:
        """Candidate files for a point lookup, in newest-to-oldest order."""
        out: list[tuple[int, FileMetaData]] = []
        # L0: newest first (descending file number — higher = newer).
        level0 = [
            f
            for f in self.files[0]
            if f.smallest_user_key <= user_key <= f.largest_user_key
        ]
        level0.sort(key=lambda f: f.number, reverse=True)
        out.extend((0, f) for f in level0)
        for level in range(1, self.num_levels):
            for meta in self.files[level]:
                if meta.smallest_user_key <= user_key <= meta.largest_user_key:
                    out.append((level, meta))
                    break  # disjoint ranges: at most one file per level
        return out


class VersionSet:
    """Owns the current :class:`Version` and the manifest log."""

    COMPARATOR_NAME = "repro.lsm.internal-bytewise"

    def __init__(self, env: Env, dbname: str, num_levels: int):
        self._env = env
        self._dbname = dbname
        self._num_levels = num_levels
        self.current = Version(num_levels)
        self.next_file_number = 2  # 1 is reserved for the first manifest
        self.last_sequence = 0
        self.log_number = 0
        self._manifest_file = None
        self._manifest_number = 0

    # -- file naming ------------------------------------------------------

    def _manifest_path(self, number: int) -> str:
        return self._env.join(self._dbname, f"MANIFEST-{number:06d}")

    def _current_path(self) -> str:
        return self._env.join(self._dbname, "CURRENT")

    def new_file_number(self) -> int:
        number = self.next_file_number
        self.next_file_number += 1
        return number

    # -- persistence -------------------------------------------------------

    def create(self) -> None:
        """Initialize a brand-new database's manifest."""
        self._manifest_number = 1
        self._manifest_file = self._env.new_writable_file(
            self._manifest_path(self._manifest_number)
        )
        bootstrap = VersionEdit(
            comparator=self.COMPARATOR_NAME,
            next_file_number=self.next_file_number,
            last_sequence=self.last_sequence,
            log_number=self.log_number,
        )
        self._manifest_file.append(bootstrap.to_json().encode() + b"\n")
        self._manifest_file.sync()
        self._set_current(self._manifest_number)

    def _set_current(self, manifest_number: int) -> None:
        tmp = self._current_path() + ".tmp"
        with self._env.new_writable_file(tmp) as fh:
            fh.append(f"MANIFEST-{manifest_number:06d}\n".encode())
            fh.sync()
        self._env.rename_file(tmp, self._current_path())

    def recover(self) -> None:
        """Rebuild state by replaying the manifest named in CURRENT."""
        with self._env.new_sequential_file(self._current_path()) as fh:
            current = fh.read(1 << 16).decode().strip()
        if not current.startswith("MANIFEST-"):
            raise CorruptionError(f"bad CURRENT contents: {current!r}")
        self._manifest_number = int(current.split("-", 1)[1])
        path = self._env.join(self._dbname, current)
        version = Version(self._num_levels)
        with self._env.new_sequential_file(path) as fh:
            data = bytearray()
            while True:
                chunk = fh.read(1 << 20)
                if not chunk:
                    break
                data += chunk
        for line in bytes(data).decode().splitlines():
            if not line.strip():
                continue
            edit = VersionEdit.from_json(line)
            version = self._apply(version, edit)
            if edit.next_file_number is not None:
                self.next_file_number = edit.next_file_number
            if edit.last_sequence is not None:
                self.last_sequence = edit.last_sequence
            if edit.log_number is not None:
                self.log_number = edit.log_number
            if (
                edit.comparator is not None
                and edit.comparator != self.COMPARATOR_NAME
            ):
                raise CorruptionError(
                    f"comparator mismatch: {edit.comparator!r}"
                )
        self.current = version
        # Append further edits to the same manifest.
        self._manifest_file = _AppendingManifest(self._env, path)

    def _apply(self, base: Version, edit: VersionEdit) -> Version:
        version = Version(self._num_levels)
        deleted = set(edit.deleted_files)
        for level in range(self._num_levels):
            version.files[level] = [
                meta
                for meta in base.files[level]
                if (level, meta.number) not in deleted
            ]
        for level, meta in edit.new_files:
            version.files[level].append(meta)
        for level in range(1, self._num_levels):
            version.files[level].sort(key=lambda f: f.smallest_user_key)
        version.files[0].sort(key=lambda f: f.number)
        return version

    def log_and_apply(self, edit: VersionEdit, sync: bool = True) -> None:
        """Persist ``edit`` and install the resulting version."""
        edit.next_file_number = self.next_file_number
        edit.last_sequence = self.last_sequence
        if edit.log_number is not None:
            self.log_number = edit.log_number
        else:
            edit.log_number = self.log_number
        self._manifest_file.append(edit.to_json().encode() + b"\n")
        if sync:
            self._manifest_file.sync()
        self.current = self._apply(self.current, edit)

    def live_file_numbers(self) -> set[int]:
        return {meta.number for _, meta in self.current.all_files()}

    def close(self) -> None:
        if self._manifest_file is not None:
            self._manifest_file.close()
            self._manifest_file = None


class _AppendingManifest:
    """Append support for an existing manifest file.

    ``Env`` writable files truncate on open (LevelDB rolls to a fresh
    manifest on recovery instead; we keep one manifest per DB lifetime and
    re-write it on recovery, which preserves the same durability contract
    with less machinery).
    """

    def __init__(self, env: Env, path: str):
        with env.new_sequential_file(path) as fh:
            existing = bytearray()
            while True:
                chunk = fh.read(1 << 20)
                if not chunk:
                    break
                existing += chunk
        self._file = env.new_writable_file(path)
        self._file.append(bytes(existing))
        self._file.sync()

    def append(self, data: bytes) -> None:
        self._file.append(data)

    def sync(self) -> None:
        self._file.sync()

    def close(self) -> None:
        self._file.close()
