"""Sharded LRU block cache (``rocksdb::NewLRUCache``).

Caches uncompressed data blocks keyed by (file number, block offset).  The
paper's LSMIO *disables* caching (§3.1.1) — checkpoint data is
write-once-read-rarely, so cache maintenance is pure overhead — and the
``enable_block_cache`` option reproduces that; the cache itself is still a
full implementation because the engine is a general-purpose library and
the read benchmarks exercise it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional


class LRUCache:
    """A size-bounded LRU mapping of keys to (value, charge) entries."""

    def __init__(self, capacity: int):
        self._capacity = max(0, int(capacity))
        self._entries: "OrderedDict[Hashable, tuple[object, int]]" = OrderedDict()
        self._usage = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Optional[object]:
        """Return the cached value or None, updating recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def insert(self, key: Hashable, value: object, charge: int) -> None:
        """Add/replace an entry accounting ``charge`` bytes, evicting LRU."""
        with self._lock:
            if charge > self._capacity:
                # An entry larger than the whole cache is not worth
                # keeping — and rejecting it must not evict a valid
                # smaller entry already cached under the key.
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._usage -= old[1]
            self._entries[key] = (value, charge)
            self._usage += charge
            while self._usage > self._capacity and self._entries:
                _, (_, evicted_charge) = self._entries.popitem(last=False)
                self._usage -= evicted_charge

    def erase(self, key: Hashable) -> None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._usage -= entry[1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._usage = 0

    @property
    def usage(self) -> int:
        with self._lock:
            return self._usage

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
