"""Storage environment abstraction (LevelDB's ``Env``).

Everything the engine does to stable storage flows through an :class:`Env`,
so the same DB code runs against:

- :class:`LocalFsEnv` — real files on a local filesystem (the standalone
  LSMIO library and the test suite);
- :class:`MemEnv` — an in-memory filesystem (fast unit tests);
- ``repro.pfs.simenv.SimLustreEnv`` — the simulated Lustre parallel file
  system, which stores the same bytes *and* charges simulated time for
  every extent, enabling the paper's cluster experiments to execute the
  genuine engine code path.

The interface is deliberately the LevelDB quartet: writable (append-only)
files, random-access files, sequential files, plus namespace operations.
SSTables and WAL segments are append-only by construction, which is what
lets an LSM turn checkpoint bursts into sequential disk traffic.
"""

from __future__ import annotations

import os
import threading
from repro.errors import NotFoundError, StorageIOError


class BufferPool:
    """Reusable ``bytearray`` scratch buffers for serialization hot paths.

    The write path (WAL framing, block/table building, batch encoding)
    repeatedly needs a growable byte buffer that is filled, consumed, and
    discarded.  Allocating a fresh ``bytearray`` each time forfeits the
    capacity the previous round already grew; the pool hands buffers back
    out with their allocation intact (``del buf[:]`` keeps capacity in
    CPython), so steady-state serialization does no reallocation at all.

    Buffers are plain bytearrays — callers own them completely between
    :meth:`acquire` and :meth:`release`, and forgetting to release is
    harmless (the buffer is simply garbage-collected).
    """

    def __init__(self, max_pooled: int = 8, max_buffer_bytes: int = 64 << 20):
        self._free: list[bytearray] = []
        self._max_pooled = max_pooled
        self._max_buffer_bytes = max_buffer_bytes
        self._lock = threading.Lock()
        self.acquires = 0
        self.reuses = 0

    def acquire(self) -> bytearray:
        """Return an empty bytearray (capacity retained from prior use)."""
        with self._lock:
            self.acquires += 1
            if self._free:
                self.reuses += 1
                return self._free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        """Hand ``buf`` back; it is cleared but keeps its allocation."""
        try:
            del buf[:]
        except BufferError:
            return  # an exported memoryview still pins it; drop it
        with self._lock:
            if (
                len(self._free) < self._max_pooled
                and buf.__sizeof__() <= self._max_buffer_bytes
            ):
                self._free.append(buf)


_DEFAULT_POOL = BufferPool()


def default_buffer_pool() -> BufferPool:
    """The process-wide pool shared by WAL and table writers."""
    return _DEFAULT_POOL


class WritableFile:
    """Append-only output file."""

    def append(self, data: bytes) -> None:
        raise NotImplementedError

    def append_owned(self, data: bytearray) -> None:
        """Append ``data``, taking ownership of the buffer.

        The caller promises never to touch ``data`` again, which lets
        in-memory destinations keep the buffer as-is instead of copying.
        The base implementation just delegates to :meth:`append`.
        """
        self.append(data)

    def flush(self) -> None:
        """Push buffered bytes to the OS (no durability guarantee)."""
        raise NotImplementedError

    def sync(self) -> None:
        """Force bytes to stable storage (fsync semantics)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "WritableFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RandomAccessFile:
    """Positioned reads over an immutable file."""

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` at ``offset`` (short read only at EOF)."""
        raise NotImplementedError

    def size(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "RandomAccessFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialFile:
    """Forward-only reads (WAL recovery)."""

    def read(self, nbytes: int) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "SequentialFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Env:
    """Filesystem namespace + file factories."""

    def new_writable_file(self, path: str) -> WritableFile:
        raise NotImplementedError

    def new_random_access_file(self, path: str) -> RandomAccessFile:
        raise NotImplementedError

    def new_sequential_file(self, path: str) -> SequentialFile:
        raise NotImplementedError

    def file_exists(self, path: str) -> bool:
        raise NotImplementedError

    def file_size(self, path: str) -> int:
        raise NotImplementedError

    def delete_file(self, path: str) -> None:
        raise NotImplementedError

    def rename_file(self, src: str, dst: str) -> None:
        raise NotImplementedError

    def create_dir(self, path: str) -> None:
        """Create a directory (and parents); idempotent."""
        raise NotImplementedError

    def get_children(self, path: str) -> list[str]:
        """Names (not paths) of entries directly under ``path``."""
        raise NotImplementedError

    def join(self, *parts: str) -> str:
        return "/".join(p.rstrip("/") for p in parts if p)

    # -- advisory database locking ---------------------------------------

    def lock_file(self, path: str) -> object:
        """Take an exclusive advisory lock (LevelDB's LOCK file).

        Returns an opaque token for :meth:`unlock_file`; raises
        :class:`StorageIOError` if another holder owns it.  The base
        implementation uses an in-process registry, which is what the
        in-memory and simulated environments need; :class:`LocalFsEnv`
        adds OS-level exclusivity.
        """
        holders = getattr(self, "_lock_holders", None)
        if holders is None:
            holders = self._lock_holders = set()
        if path in holders:
            raise StorageIOError(f"database already locked: {path}")
        holders.add(path)
        return path

    def unlock_file(self, token: object) -> None:
        """Release a lock taken by :meth:`lock_file`."""
        holders = getattr(self, "_lock_holders", set())
        holders.discard(token)


# ---------------------------------------------------------------------------
# Local filesystem
# ---------------------------------------------------------------------------


class _LocalWritableFile(WritableFile):
    def __init__(self, path: str):
        try:
            self._fh = open(path, "wb")
        except OSError as exc:
            raise StorageIOError(str(exc)) from exc

    def append(self, data: bytes) -> None:
        self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class _LocalRandomAccessFile(RandomAccessFile):
    def __init__(self, path: str, use_mmap: bool):
        try:
            self._fh = open(path, "rb")
        except FileNotFoundError as exc:
            raise NotFoundError(str(exc)) from exc
        except OSError as exc:
            raise StorageIOError(str(exc)) from exc
        self._size = os.fstat(self._fh.fileno()).st_size
        self._mm = None
        if use_mmap and self._size > 0:
            import mmap

            self._mm = mmap.mmap(
                self._fh.fileno(), self._size, access=mmap.ACCESS_READ
            )
        self._lock = threading.Lock()

    def read(self, offset: int, nbytes: int) -> bytes:
        if self._mm is not None:
            return bytes(self._mm[offset : offset + nbytes])
        with self._lock:  # seek+read must be atomic across reader threads
            self._fh.seek(offset)
            return self._fh.read(nbytes)

    def size(self) -> int:
        return self._size

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if not self._fh.closed:
            self._fh.close()


class _LocalSequentialFile(SequentialFile):
    def __init__(self, path: str):
        try:
            self._fh = open(path, "rb")
        except FileNotFoundError as exc:
            raise NotFoundError(str(exc)) from exc

    def read(self, nbytes: int) -> bytes:
        return self._fh.read(nbytes)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class LocalFsEnv(Env):
    """Real files under the host filesystem."""

    def __init__(self, use_mmap_reads: bool = False):
        self.use_mmap_reads = use_mmap_reads

    def new_writable_file(self, path: str) -> WritableFile:
        return _LocalWritableFile(path)

    def new_random_access_file(self, path: str) -> RandomAccessFile:
        return _LocalRandomAccessFile(path, self.use_mmap_reads)

    def new_sequential_file(self, path: str) -> SequentialFile:
        return _LocalSequentialFile(path)

    def file_exists(self, path: str) -> bool:
        return os.path.exists(path)

    def file_size(self, path: str) -> int:
        try:
            return os.path.getsize(path)
        except FileNotFoundError as exc:
            raise NotFoundError(str(exc)) from exc

    def delete_file(self, path: str) -> None:
        try:
            os.remove(path)
        except FileNotFoundError as exc:
            raise NotFoundError(str(exc)) from exc

    def rename_file(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def create_dir(self, path: str) -> None:
        os.makedirs(path, exist_ok=True)

    def get_children(self, path: str) -> list[str]:
        try:
            return sorted(os.listdir(path))
        except FileNotFoundError as exc:
            raise NotFoundError(str(exc)) from exc

    def join(self, *parts: str) -> str:
        return os.path.join(*parts)

    def lock_file(self, path: str) -> object:
        """O_EXCL-based exclusive lock, robust across processes.

        A stale LOCK file from a crashed process is broken if its
        recorded PID no longer exists.
        """
        super().lock_file(path)  # in-process exclusivity first
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            stale = False
            try:
                with open(path) as fh:
                    pid = int(fh.read().strip() or 0)
                if pid and not _pid_alive(pid):
                    stale = True
            except (OSError, ValueError):
                stale = True
            if not stale:
                super().unlock_file(path)
                raise StorageIOError(
                    f"database locked by another process: {path}"
                )
            os.remove(path)
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return path

    def unlock_file(self, token: object) -> None:
        super().unlock_file(token)
        try:
            os.remove(token)
        except FileNotFoundError:
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# ---------------------------------------------------------------------------
# In-memory filesystem
# ---------------------------------------------------------------------------


class _MemFile:
    """Chunked in-memory file contents.

    Appends collect immutable chunks instead of extending one big
    bytearray — extending reallocates (and memcpys) the whole file every
    time the allocator's headroom runs out, which dominates large-value
    write benchmarks.  Readers join once, lazily.
    """

    __slots__ = ("chunks", "length")

    def __init__(self):
        self.chunks: list[bytes] = []
        self.length = 0

    def snapshot(self) -> bytes:
        """Contents as one immutable bytes; collapses the chunk list."""
        if len(self.chunks) == 1 and isinstance(self.chunks[0], bytes):
            return self.chunks[0]
        data = b"".join(self.chunks)
        self.chunks = [data]
        return data

    @property
    def data(self) -> bytearray:
        """Whole contents as one mutable chunk (fault-injection hook).

        Tests flip bytes in place through this; the returned bytearray IS
        the backing chunk, so mutations are visible to later readers.
        """
        if len(self.chunks) != 1 or not isinstance(self.chunks[0], bytearray):
            self.chunks = [bytearray(b"".join(self.chunks))]
        return self.chunks[0]

    @data.setter
    def data(self, contents) -> None:
        """Replace the whole contents (tests truncate/corrupt via this)."""
        self.chunks = [bytearray(contents)]
        self.length = len(self.chunks[0])


class _MemWritableFile(WritableFile):
    def __init__(self, mem: _MemFile):
        self._mem = mem
        self._closed = False

    def append(self, data: bytes) -> None:
        # bytes(data) is free for bytes input and one exact-size copy for
        # bytearray/memoryview input (callers reuse their scratch buffers).
        chunk = bytes(data)
        self._mem.chunks.append(chunk)
        self._mem.length += len(chunk)

    def append_owned(self, data: bytearray) -> None:
        # Ownership transferred: keep the caller's buffer as the chunk.
        if not isinstance(data, bytearray):
            self.append(data)
            return
        self._mem.chunks.append(data)
        self._mem.length += len(data)

    def flush(self) -> None:
        pass

    def sync(self) -> None:
        pass

    def close(self) -> None:
        self._closed = True


class _MemRandomAccessFile(RandomAccessFile):
    def __init__(self, mem: _MemFile):
        self._data = mem.snapshot()

    def read(self, offset: int, nbytes: int) -> bytes:
        return self._data[offset : offset + nbytes]

    def size(self) -> int:
        return len(self._data)

    def close(self) -> None:
        pass


class _MemSequentialFile(SequentialFile):
    def __init__(self, mem: _MemFile):
        self._data = mem.snapshot()
        self._pos = 0

    def read(self, nbytes: int) -> bytes:
        out = self._data[self._pos : self._pos + nbytes]
        self._pos += len(out)
        return out

    def close(self) -> None:
        pass


class MemEnv(Env):
    """A purely in-memory filesystem; paths are flat strings with ``/``."""

    def __init__(self):
        self._files: dict[str, _MemFile] = {}
        self._dirs: set[str] = {""}
        self._lock = threading.Lock()

    @staticmethod
    def _norm(path: str) -> str:
        return path.strip("/").replace("//", "/")

    def new_writable_file(self, path: str) -> WritableFile:
        with self._lock:
            mem = _MemFile()
            self._files[self._norm(path)] = mem
            return _MemWritableFile(mem)

    def _lookup(self, path: str) -> _MemFile:
        try:
            return self._files[self._norm(path)]
        except KeyError as exc:
            raise NotFoundError(f"no such file: {path}") from exc

    def new_random_access_file(self, path: str) -> RandomAccessFile:
        with self._lock:
            return _MemRandomAccessFile(self._lookup(path))

    def new_sequential_file(self, path: str) -> SequentialFile:
        with self._lock:
            return _MemSequentialFile(self._lookup(path))

    def file_exists(self, path: str) -> bool:
        with self._lock:
            return self._norm(path) in self._files

    def file_size(self, path: str) -> int:
        with self._lock:
            return self._lookup(path).length

    def delete_file(self, path: str) -> None:
        with self._lock:
            try:
                del self._files[self._norm(path)]
            except KeyError as exc:
                raise NotFoundError(f"no such file: {path}") from exc

    def rename_file(self, src: str, dst: str) -> None:
        with self._lock:
            try:
                self._files[self._norm(dst)] = self._files.pop(self._norm(src))
            except KeyError as exc:
                raise NotFoundError(f"no such file: {src}") from exc

    def create_dir(self, path: str) -> None:
        with self._lock:
            norm = self._norm(path)
            pieces = norm.split("/")
            for i in range(1, len(pieces) + 1):
                self._dirs.add("/".join(pieces[:i]))

    def get_children(self, path: str) -> list[str]:
        norm = self._norm(path)
        prefix = norm + "/" if norm else ""
        with self._lock:
            if norm not in self._dirs and not any(
                name.startswith(prefix) for name in self._files
            ):
                raise NotFoundError(f"no such directory: {path}")
            children: set[str] = set()
            for name in self._files:
                if name.startswith(prefix):
                    children.add(name[len(prefix):].split("/", 1)[0])
            for name in self._dirs:
                if name.startswith(prefix) and name != norm:
                    children.add(name[len(prefix):].split("/", 1)[0])
            return sorted(children)
