"""The MemTable: the LSM-tree's C0 component (§2.2 of the paper).

Holds the most recent updates in a skiplist ordered by internal key and
answers point lookups before any SSTable is consulted.  When
``approximate_memory_usage`` exceeds the write buffer size the DB freezes
the memtable and flushes it to an L0 SSTable — that flush is the large
sequential write the whole paper is about.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.lsm.dbformat import (
    MAX_SEQUENCE,
    ValueType,
    decode_internal_key,
    encode_internal_key,
    internal_compare,
    seek_key,
)
from repro.lsm.skiplist import SkipList

# Rough per-entry bookkeeping overhead (node + list slots + key copy),
# counted so the flush trigger tracks real memory, not just payload bytes.
_ENTRY_OVERHEAD = 96


class GetResult:
    """Outcome of a memtable lookup for one user key.

    The memtable alone cannot always resolve a read: a chain of MERGE
    (append) operands without a base value underneath must fall through to
    older tables.  ``state`` is one of:

    - ``"found"``    — ``value`` is the fully-resolved bytes;
    - ``"deleted"``  — a tombstone is the newest entry;
    - ``"merge"``    — ``operands`` (oldest→newest) need a base from below;
    - ``"missing"``  — no entry for this key at all.
    """

    __slots__ = ("state", "value", "operands")

    def __init__(self, state: str, value: bytes = b"", operands=()):
        self.state = state
        self.value = value
        self.operands = list(operands)


class MemTable:
    """Skiplist of (internal key → value) with LSM read semantics."""

    def __init__(self, seed: int = 0):
        self._entries: dict[bytes, bytes] = {}
        self._index = SkipList(less=lambda a, b: internal_compare(a, b) < 0, seed=seed)
        self._memory = 0

    def __len__(self) -> int:
        return len(self._entries)

    def approximate_memory_usage(self) -> int:
        """Bytes of keys+values+overhead currently buffered."""
        return self._memory

    def add(
        self, sequence: int, value_type: ValueType, user_key: bytes, value: bytes
    ) -> None:
        """Insert one update; (user_key, sequence) pairs must be unique."""
        ikey = encode_internal_key(user_key, sequence, value_type)
        self._index.insert(ikey)
        self._entries[ikey] = value
        self._memory += len(ikey) + len(value) + _ENTRY_OVERHEAD

    def get(self, user_key: bytes, max_sequence: Optional[int] = None) -> GetResult:
        """Resolve ``user_key`` against buffered updates (newest first).

        ``max_sequence`` bounds visibility for snapshot reads: entries
        newer than it are skipped.
        """
        operands: list[bytes] = []
        for ikey in self._index.seek(seek_key(user_key, 
                max_sequence if max_sequence is not None else MAX_SEQUENCE)):
            parsed = decode_internal_key(ikey)
            if parsed.user_key != user_key:
                break
            if parsed.value_type is ValueType.VALUE:
                base = self._entries[ikey]
                if operands:
                    return GetResult(
                        "found", base + b"".join(reversed(operands))
                    )
                return GetResult("found", base)
            if parsed.value_type is ValueType.DELETE:
                if operands:
                    # Deleted base + later appends == appends on empty value.
                    return GetResult("found", b"".join(reversed(operands)))
                return GetResult("deleted")
            operands.append(self._entries[ikey])  # MERGE, newest first
        if operands:
            return GetResult("merge", operands=list(reversed(operands)))
        return GetResult("missing")

    def entries(self) -> Iterator[tuple[bytes, bytes]]:
        """All (internal key, value) pairs in internal-key order."""
        for ikey in self._index:
            yield ikey, self._entries[ikey]

    def seek(self, ikey: bytes) -> Iterator[tuple[bytes, bytes]]:
        """(internal key, value) pairs with internal key >= ``ikey``."""
        for found in self._index.seek(ikey):
            yield found, self._entries[found]

    def smallest_key(self) -> Optional[bytes]:
        return self._index.first()

    def largest_key(self) -> Optional[bytes]:
        return self._index.last()
