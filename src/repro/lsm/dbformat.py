"""Internal key format shared by the memtable, WAL, SSTables and iterators.

An *internal key* is the user key followed by an 8-byte trailer packing
``(sequence << 8) | value_type`` (LevelDB's layout).  Ordering is user key
ascending, then sequence **descending**, so the newest version of a key is
encountered first during forward iteration.

Value types:

- ``VALUE``  — a full value from ``put()``;
- ``DELETE`` — a tombstone from ``delete()``;
- ``MERGE``  — an append operand from ``append()`` (LSMIO's ``append()``
  maps onto RocksDB's merge-operator machinery; our merge semantics is
  byte-string concatenation, which is what a checkpoint stream needs).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import CorruptionError
from repro.util.varint import decode_fixed64, encode_fixed64

MAX_SEQUENCE = (1 << 56) - 1


class ValueType(enum.IntEnum):
    """Discriminator stored in the low byte of the internal-key trailer."""

    DELETE = 0
    VALUE = 1
    MERGE = 2


# Seeking to (user_key, MAX_SEQUENCE, VALUE_FOR_SEEK) finds the newest entry
# for user_key, because sequences sort descending and VALUE_FOR_SEEK is the
# greatest type value.
VALUE_TYPE_FOR_SEEK = ValueType.MERGE


class ParsedInternalKey(NamedTuple):
    """A decoded internal key."""

    user_key: bytes
    sequence: int
    value_type: ValueType


def pack_trailer(sequence: int, value_type: ValueType) -> int:
    """Combine sequence and type into the 8-byte trailer integer."""
    if not 0 <= sequence <= MAX_SEQUENCE:
        raise ValueError(f"sequence out of range: {sequence}")
    return (sequence << 8) | int(value_type)


def encode_internal_key(
    user_key: bytes, sequence: int, value_type: ValueType
) -> bytes:
    """Serialize an internal key: user key + little-endian fixed64 trailer."""
    return user_key + encode_fixed64(pack_trailer(sequence, value_type))


def decode_internal_key(ikey: bytes) -> ParsedInternalKey:
    """Parse an internal key, validating the trailer."""
    if len(ikey) < 8:
        raise CorruptionError(f"internal key too short: {len(ikey)} bytes")
    trailer = decode_fixed64(ikey, len(ikey) - 8)
    value_type = trailer & 0xFF
    try:
        vt = ValueType(value_type)
    except ValueError as exc:
        raise CorruptionError(f"bad value type {value_type}") from exc
    return ParsedInternalKey(bytes(ikey[:-8]), trailer >> 8, vt)


def internal_key_user_key(ikey: bytes) -> bytes:
    """Extract the user-key prefix without fully decoding."""
    if len(ikey) < 8:
        raise CorruptionError(f"internal key too short: {len(ikey)} bytes")
    return bytes(ikey[:-8])


def internal_compare(a: bytes, b: bytes) -> int:
    """Three-way comparison of encoded internal keys.

    User key ascending, then sequence descending, then type descending
    (the trailer packs both, so one descending integer compare suffices).
    """
    ua, ub = a[:-8], b[:-8]
    if ua < ub:
        return -1
    if ua > ub:
        return 1
    ta = decode_fixed64(a, len(a) - 8)
    tb = decode_fixed64(b, len(b) - 8)
    if ta > tb:  # larger trailer = newer = sorts FIRST
        return -1
    if ta < tb:
        return 1
    return 0


class InternalKeyComparator:
    """Comparator object for containers ordered by internal key."""

    __slots__ = ()

    @staticmethod
    def compare(a: bytes, b: bytes) -> int:
        return internal_compare(a, b)

    @staticmethod
    def less(a: bytes, b: bytes) -> bool:
        return internal_compare(a, b) < 0

    @staticmethod
    def sort_key(ikey: bytes):
        """A key function compatible with :func:`sorted`.

        Inverts the trailer so plain tuple ordering reproduces
        :func:`internal_compare`.
        """
        trailer = decode_fixed64(ikey, len(ikey) - 8)
        return (bytes(ikey[:-8]), -trailer)


def seek_key(user_key: bytes, sequence: int = MAX_SEQUENCE) -> bytes:
    """Internal key positioned at-or-before all entries ≤ ``sequence``."""
    return encode_internal_key(user_key, sequence, VALUE_TYPE_FOR_SEEK)
