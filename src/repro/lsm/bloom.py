"""Bloom filter policy (RocksDB full-filter style).

One filter covers a whole SSTable; a negative probe lets a read skip the
table without touching its index or data blocks.  That matters directly
for the paper's Figure 10: LSMIO's point-lookup reads traverse every L0
table when compaction is disabled, and blooms keep that traversal from
costing a block read per table.

Hashing is double hashing over a 64-bit FNV-1a base hash, k probes derived
as ``h1 + i*h2`` — the standard Kirsch–Mitzenmacher construction.
"""

from __future__ import annotations

import math

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


class BloomFilter:
    """Immutable probabilistic set over byte-string keys."""

    def __init__(self, bits: bytearray, num_probes: int):
        self._bits = bits
        self._num_probes = num_probes

    @classmethod
    def build(cls, keys: list[bytes], bits_per_key: int = 10) -> "BloomFilter":
        """Construct a filter sized for ``keys`` at ``bits_per_key``."""
        num_probes = max(1, min(30, round(bits_per_key * math.log(2))))
        nbits = max(64, len(keys) * bits_per_key)
        nbytes = (nbits + 7) // 8
        nbits = nbytes * 8
        bits = bytearray(nbytes)
        for key in keys:
            h = _fnv1a(key)
            h1 = h & 0xFFFFFFFF
            h2 = (h >> 32) | 1  # odd, so probes cycle through the table
            for i in range(num_probes):
                pos = (h1 + i * h2) % nbits
                bits[pos >> 3] |= 1 << (pos & 7)
        return cls(bits, num_probes)

    def may_contain(self, key: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ probably present."""
        nbits = len(self._bits) * 8
        if nbits == 0:
            return True
        h = _fnv1a(key)
        h1 = h & 0xFFFFFFFF
        h2 = (h >> 32) | 1
        for i in range(self._num_probes):
            pos = (h1 + i * h2) % nbits
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def encode(self) -> bytes:
        """Serialize as bit array + trailing probe-count byte."""
        return bytes(self._bits) + bytes([self._num_probes])

    @classmethod
    def decode(cls, data: bytes) -> "BloomFilter":
        if not data:
            return cls(bytearray(), 1)
        return cls(bytearray(data[:-1]), data[-1])

    @property
    def num_probes(self) -> int:
        return self._num_probes

    def __len__(self) -> int:
        """Size of the bit array in bits."""
        return len(self._bits) * 8
