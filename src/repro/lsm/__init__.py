"""A complete log-structured merge-tree storage engine in Python.

This package is a from-scratch reimplementation of the LevelDB/RocksDB
architecture that the paper's LSMIO library builds on (§2.2, §3.1.1):

- an in-memory **MemTable** (the C0 tree) backed by a skiplist
  (:mod:`repro.lsm.skiplist`, :mod:`repro.lsm.memtable`);
- an optional **write-ahead log** with LevelDB's exact record framing
  (:mod:`repro.lsm.wal`);
- immutable on-disk **SSTables** (the C1..Ck trees) with prefix-compressed
  data blocks, a binary-searchable index block, bloom filters and a magic
  footer (:mod:`repro.lsm.block`, :mod:`repro.lsm.bloom`,
  :mod:`repro.lsm.sstable`);
- **leveled compaction** with a manifest/version set
  (:mod:`repro.lsm.manifest`, :mod:`repro.lsm.compaction`);
- an **LRU block cache** (:mod:`repro.lsm.cache`);
- atomic **write batches** (:mod:`repro.lsm.batch`) and merging iterators
  (:mod:`repro.lsm.iterator`);
- the top-level :class:`repro.lsm.db.DB` tying it together.

Every customization the paper applies to RocksDB (§3.1.1) is a first-class
option here: disable WAL, disable compression, disable caching, disable
compaction, sync vs. async writes, mmap reads, write-buffer size and block
size (:mod:`repro.lsm.options`).

The engine runs against an :class:`~repro.lsm.env.Env` abstraction so the
same code stores real bytes on a local filesystem (the standalone library)
or on the simulated Lustre file system under a discrete-event clock (the
paper's cluster experiments).
"""

from repro.lsm.batch import WriteBatch
from repro.lsm.db import DB
from repro.lsm.env import Env, LocalFsEnv, MemEnv
from repro.lsm.options import (
    ChecksumType,
    CompressionType,
    Options,
    ReadOptions,
    WriteOptions,
)

__all__ = [
    "DB",
    "ChecksumType",
    "CompressionType",
    "Env",
    "LocalFsEnv",
    "MemEnv",
    "Options",
    "ReadOptions",
    "WriteBatch",
    "WriteOptions",
]
