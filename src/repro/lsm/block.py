"""SSTable block format: prefix-compressed entries with restart points.

LevelDB's data/index blocks store entries as::

    shared_len   varint32   # prefix shared with the previous key
    unshared_len varint32
    value_len    varint32
    key_suffix   unshared_len bytes
    value        value_len bytes

Every ``block_restart_interval`` entries the prefix compression resets and
the entry's offset is recorded in a trailing array of fixed32 *restart
points*, enabling binary search inside the block.  The block trailer
(compression byte + checksum) is handled by the table layer, not here.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_fixed32,
    decode_varint32,
    encode_fixed32,
    encode_varint32,
)


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def _bytewise_compare(a: bytes, b: bytes) -> int:
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


#: values at least this large are kept as whole segments instead of being
#: copied into the block buffer (checkpoint values are tens of KiB; the
#: copy is the block builder's dominant cost for them)
LARGE_VALUE_BYTES = 4096


class BlockBuilder:
    """Accumulates sorted entries into one serialized block.

    ``compare`` is a three-way comparator over the keys being stored; data
    blocks hold *internal* keys (which do not sort bytewise — the sequence
    trailer sorts descending) so the table layer passes
    :func:`repro.lsm.dbformat.internal_compare`.

    Large ``bytes`` values are held by reference as standalone segments
    (``_parts``) rather than copied into the working buffer; consumers on
    the zero-copy path take :meth:`detach_parts` and stream the segments
    out in order, producing the identical byte layout.
    """

    def __init__(self, restart_interval: int = 16, compare=None):
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self._restart_interval = restart_interval
        self._compare = compare if compare is not None else _bytewise_compare
        self.reset()

    def reset(self) -> None:
        buf = getattr(self, "_buf", None)
        if buf is None:
            self._buf = bytearray()
        else:
            try:
                del buf[:]  # keep the allocation for the next block
            except BufferError:
                # A finish() view is still exported; leave that buffer to
                # its holder and start fresh.
                self._buf = bytearray()
        self._parts: list = []  # sealed segments preceding self._buf
        self._parts_len = 0
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._num_entries = 0

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly increasing order."""
        if self._num_entries and self._compare(key, self._last_key) <= 0:
            raise ValueError("block entries must be added in sorted order")
        buf = self._buf
        if self._counter < self._restart_interval:
            shared = _shared_prefix_len(self._last_key, key)
        else:
            shared = 0
            self._restarts.append(self._parts_len + len(buf))
            self._counter = 0
        unshared = len(key) - shared
        buf += encode_varint32(shared)
        buf += encode_varint32(unshared)
        buf += encode_varint32(len(value))
        buf += key[shared:]
        if len(value) >= LARGE_VALUE_BYTES and type(value) is bytes:
            # Keep the value as its own segment — no copy.
            if buf:
                self._parts.append(buf)
                self._parts_len += len(buf)
                self._buf = bytearray()
            self._parts.append(value)
            self._parts_len += len(value)
        else:
            buf += value
        self._last_key = key
        self._counter += 1
        self._num_entries += 1

    def finish(self) -> memoryview:
        """Serialize: entries, restart offsets, restart count.

        Appends the restart array in place and returns a ``memoryview``
        — zero copies when no large-value segments were taken (index and
        meta blocks), one join otherwise (the compression path, which
        needs contiguous input anyway).  The view is only valid until
        :meth:`reset`; consumers that outlive it (block caches, tests)
        must take ``bytes()`` of it, which :class:`Block` does.
        """
        buf = self._buf
        for restart in self._restarts:
            buf += encode_fixed32(restart)
        buf += encode_fixed32(len(self._restarts))
        if not self._parts:
            return memoryview(buf)
        self._parts.append(bytes(buf))
        whole = bytearray(b"".join(self._parts))
        self._parts = [whole]  # idempotent finish/reset handling
        self._parts_len = len(whole)
        del buf[:]
        return memoryview(whole)

    def detach_parts(self) -> list:
        """Serialize and transfer ownership of all segments, in order.

        Returns the block's byte stream as an ordered list of buffers —
        ``bytes`` segments are shared references, the final ``bytearray``
        carries the restart array — and re-arms the builder.  Callers
        stream them to a ``WritableFile`` (``append``/``append_owned``)
        for a copy-free block write with the identical layout.
        """
        buf = self._buf
        for restart in self._restarts:
            buf += encode_fixed32(restart)
        buf += encode_fixed32(len(self._restarts))
        parts = self._parts
        parts.append(buf)
        self._parts = []
        self._buf = bytearray()
        self.reset()
        return parts

    def current_size_estimate(self) -> int:
        return self._parts_len + len(self._buf) + 4 * (len(self._restarts) + 1)

    @property
    def empty(self) -> bool:
        return self._num_entries == 0

    @property
    def last_key(self) -> bytes:
        return self._last_key


class Block:
    """Read-side view of a serialized block with binary-searchable seeks."""

    def __init__(self, data: bytes, compare=None):
        if not isinstance(data, bytes):
            data = bytes(data)  # accept builder views; reads need bytes
        if len(data) < 4:
            raise CorruptionError("block too small")
        self._data = data
        self._compare = compare if compare is not None else _bytewise_compare
        num_restarts = decode_fixed32(data, len(data) - 4)
        restarts_off = len(data) - 4 - 4 * num_restarts
        if restarts_off < 0:
            raise CorruptionError("bad restart array")
        self._restarts = [
            decode_fixed32(data, restarts_off + 4 * i) for i in range(num_restarts)
        ]
        self._limit = restarts_off

    def _decode_entry(self, offset: int, prev_key: bytes) -> tuple[bytes, bytes, int]:
        """Return (key, value, next_offset) for the entry at ``offset``."""
        shared, pos = decode_varint32(self._data, offset)
        unshared, pos = decode_varint32(self._data, pos)
        value_len, pos = decode_varint32(self._data, pos)
        if shared > len(prev_key):
            raise CorruptionError("corrupted shared prefix length")
        key_end = pos + unshared
        value_end = key_end + value_len
        if value_end > self._limit:
            raise CorruptionError("block entry overruns restart array")
        key = prev_key[:shared] + self._data[pos:key_end]
        value = self._data[key_end:value_end]
        return key, value, value_end

    def _restart_key(self, index: int) -> bytes:
        key, _, _ = self._decode_entry(self._restarts[index], b"")
        return key

    def iterate(self, start: int = 0) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) from restart-region offset ``start``."""
        offset = start
        prev_key = b""
        while offset < self._limit:
            key, value, offset = self._decode_entry(offset, prev_key)
            yield key, value
            prev_key = key

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        return self.iterate(0)

    def seek(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with key >= ``target``.

        Binary search over restart points, then a linear scan of at most
        one restart interval.  Ordering is defined by the block's
        comparator.
        """
        if not self._restarts or self._limit == 0:
            return
        lo, hi = 0, len(self._restarts) - 1
        # Find the last restart whose key < target.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._compare(self._restart_key(mid), target) < 0:
                lo = mid
            else:
                hi = mid - 1
        for key, value in self.iterate(self._restarts[lo]):
            if self._compare(key, target) >= 0:
                yield key, value

    def first_key(self) -> Optional[bytes]:
        if self._limit == 0:
            return None
        return self._restart_key(0)

    @property
    def num_restarts(self) -> int:
        return len(self._restarts)
