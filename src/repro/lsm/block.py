"""SSTable block format: prefix-compressed entries with restart points.

LevelDB's data/index blocks store entries as::

    shared_len   varint32   # prefix shared with the previous key
    unshared_len varint32
    value_len    varint32
    key_suffix   unshared_len bytes
    value        value_len bytes

Every ``block_restart_interval`` entries the prefix compression resets and
the entry's offset is recorded in a trailing array of fixed32 *restart
points*, enabling binary search inside the block.  The block trailer
(compression byte + checksum) is handled by the table layer, not here.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import CorruptionError
from repro.util.varint import (
    decode_fixed32,
    decode_varint32,
    encode_fixed32,
    encode_varint32,
)


def _shared_prefix_len(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def _bytewise_compare(a: bytes, b: bytes) -> int:
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class BlockBuilder:
    """Accumulates sorted entries into one serialized block.

    ``compare`` is a three-way comparator over the keys being stored; data
    blocks hold *internal* keys (which do not sort bytewise — the sequence
    trailer sorts descending) so the table layer passes
    :func:`repro.lsm.dbformat.internal_compare`.
    """

    def __init__(self, restart_interval: int = 16, compare=None):
        if restart_interval < 1:
            raise ValueError("restart_interval must be >= 1")
        self._restart_interval = restart_interval
        self._compare = compare if compare is not None else _bytewise_compare
        self.reset()

    def reset(self) -> None:
        self._buf = bytearray()
        self._restarts = [0]
        self._counter = 0
        self._last_key = b""
        self._num_entries = 0

    def add(self, key: bytes, value: bytes) -> None:
        """Append an entry; keys must arrive in strictly increasing order."""
        if self._num_entries and self._compare(key, self._last_key) <= 0:
            raise ValueError("block entries must be added in sorted order")
        if self._counter < self._restart_interval:
            shared = _shared_prefix_len(self._last_key, key)
        else:
            shared = 0
            self._restarts.append(len(self._buf))
            self._counter = 0
        unshared = len(key) - shared
        self._buf += encode_varint32(shared)
        self._buf += encode_varint32(unshared)
        self._buf += encode_varint32(len(value))
        self._buf += key[shared:]
        self._buf += value
        self._last_key = key
        self._counter += 1
        self._num_entries += 1

    def finish(self) -> bytes:
        """Serialize: entries, restart offsets, restart count."""
        out = bytearray(self._buf)
        for restart in self._restarts:
            out += encode_fixed32(restart)
        out += encode_fixed32(len(self._restarts))
        return bytes(out)

    def current_size_estimate(self) -> int:
        return len(self._buf) + 4 * (len(self._restarts) + 1)

    @property
    def empty(self) -> bool:
        return self._num_entries == 0

    @property
    def last_key(self) -> bytes:
        return self._last_key


class Block:
    """Read-side view of a serialized block with binary-searchable seeks."""

    def __init__(self, data: bytes, compare=None):
        if len(data) < 4:
            raise CorruptionError("block too small")
        self._data = data
        self._compare = compare if compare is not None else _bytewise_compare
        num_restarts = decode_fixed32(data, len(data) - 4)
        restarts_off = len(data) - 4 - 4 * num_restarts
        if restarts_off < 0:
            raise CorruptionError("bad restart array")
        self._restarts = [
            decode_fixed32(data, restarts_off + 4 * i) for i in range(num_restarts)
        ]
        self._limit = restarts_off

    def _decode_entry(self, offset: int, prev_key: bytes) -> tuple[bytes, bytes, int]:
        """Return (key, value, next_offset) for the entry at ``offset``."""
        shared, pos = decode_varint32(self._data, offset)
        unshared, pos = decode_varint32(self._data, pos)
        value_len, pos = decode_varint32(self._data, pos)
        if shared > len(prev_key):
            raise CorruptionError("corrupted shared prefix length")
        key_end = pos + unshared
        value_end = key_end + value_len
        if value_end > self._limit:
            raise CorruptionError("block entry overruns restart array")
        key = prev_key[:shared] + self._data[pos:key_end]
        value = self._data[key_end:value_end]
        return key, value, value_end

    def _restart_key(self, index: int) -> bytes:
        key, _, _ = self._decode_entry(self._restarts[index], b"")
        return key

    def iterate(self, start: int = 0) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) from restart-region offset ``start``."""
        offset = start
        prev_key = b""
        while offset < self._limit:
            key, value, offset = self._decode_entry(offset, prev_key)
            yield key, value
            prev_key = key

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        return self.iterate(0)

    def seek(self, target: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield entries with key >= ``target``.

        Binary search over restart points, then a linear scan of at most
        one restart interval.  Ordering is defined by the block's
        comparator.
        """
        if not self._restarts or self._limit == 0:
            return
        lo, hi = 0, len(self._restarts) - 1
        # Find the last restart whose key < target.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._compare(self._restart_key(mid), target) < 0:
                lo = mid
            else:
                hi = mid - 1
        for key, value in self.iterate(self._restarts[lo]):
            if self._compare(key, target) >= 0:
                yield key, value

    def first_key(self) -> Optional[bytes]:
        if self._limit == 0:
            return None
        return self._restart_key(0)

    @property
    def num_restarts(self) -> int:
        return len(self._restarts)
