"""Iterators: k-way merging over sorted runs and user-visible resolution.

Reading an LSM-tree is "a way similar to a merge sort" (§2.2): the
memtable, every L0 file, and one file per deeper level each provide a
sorted stream of internal entries; :class:`MergingIterator` interleaves
them in internal-key order (user key ascending, sequence descending), and
:func:`resolve_user_entries` collapses each user key's version chain into
the value a reader should see — applying merge (append) operands and
suppressing tombstones.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional

from repro.lsm.dbformat import (
    ValueType,
    decode_internal_key,
)
from repro.util.varint import decode_fixed64


def _heap_key(ikey: bytes, stream_index: int):
    """Heap ordering: internal-key order, ties broken by stream index.

    Stream index tie-breaking matters only when two streams carry the same
    (user key, sequence), which the write path never produces; it keeps
    the merge deterministic regardless.
    """
    trailer = decode_fixed64(ikey, len(ikey) - 8)
    return (bytes(ikey[:-8]), -trailer, stream_index)


class MergingIterator:
    """Merges N sorted (internal key, value) streams into one."""

    def __init__(self, streams: Iterable[Iterator[tuple[bytes, bytes]]]):
        self._heap: list[tuple[tuple, bytes, bytes, int, Iterator]] = []
        for index, stream in enumerate(streams):
            stream = iter(stream)
            first = next(stream, None)
            if first is not None:
                ikey, value = first
                heapq.heappush(
                    self._heap, (_heap_key(ikey, index), ikey, value, index, stream)
                )

    def __iter__(self) -> Iterator[tuple[bytes, bytes]]:
        heap = self._heap
        while heap:
            _, ikey, value, index, stream = heapq.heappop(heap)
            yield ikey, value
            nxt = next(stream, None)
            if nxt is not None:
                nkey, nvalue = nxt
                heapq.heappush(
                    heap, (_heap_key(nkey, index), nkey, nvalue, index, stream)
                )


def resolve_user_entries(
    merged: Iterable[tuple[bytes, bytes]],
    stop_after_user_key: Optional[bytes] = None,
) -> Iterator[tuple[bytes, bytes]]:
    """Collapse internal entries into user-visible (user key, value) pairs.

    For each user key (whose versions arrive newest-first):

    - a ``VALUE`` terminates the chain: the result is the value plus any
      newer ``MERGE`` operands appended after it (oldest→newest);
    - a ``DELETE`` terminates the chain: the key is visible only if newer
      ``MERGE`` operands exist (append-after-delete re-creates the key);
    - a chain of only ``MERGE`` operands yields their concatenation
      (append to a never-written key starts from empty).

    ``stop_after_user_key`` bounds range scans without draining the merge.
    """
    current_key: Optional[bytes] = None
    operands: list[bytes] = []
    terminated = False  # saw VALUE or DELETE for current_key
    visible = False
    base = b""

    def emit() -> Optional[tuple[bytes, bytes]]:
        if current_key is None or not visible:
            return None
        return current_key, base + b"".join(reversed(operands))

    for ikey, value in merged:
        parsed = decode_internal_key(ikey)
        if parsed.user_key != current_key:
            result = emit()
            if result is not None:
                yield result
            if (
                stop_after_user_key is not None
                and parsed.user_key > stop_after_user_key
            ):
                return
            current_key = parsed.user_key
            operands = []
            terminated = False
            visible = False
            base = b""
        if terminated:
            continue  # older shadowed versions of the same user key
        if parsed.value_type is ValueType.VALUE:
            base = value
            visible = True
            terminated = True
        elif parsed.value_type is ValueType.DELETE:
            terminated = True
            visible = bool(operands)  # append-after-delete resurrects
        else:  # MERGE
            operands.append(value)
            visible = True
    result = emit()
    if result is not None:
        yield result


def collapse_internal_entries(
    merged: Iterable[tuple[bytes, bytes]],
    drop_tombstones: bool,
) -> Iterator[tuple[bytes, int, bytes, ValueType]]:
    """Compaction-side collapse: one output entry per user key.

    Unlike :func:`resolve_user_entries` this keeps tombstones (unless the
    compaction reaches the bottommost level, ``drop_tombstones=True``)
    because deeper levels may still hold older versions that the tombstone
    must continue to shadow.

    Yields (user_key, sequence, value, value_type); ``sequence`` is the
    newest sequence seen for the key so the collapsed entry keeps
    shadowing everything it shadowed before.  Output types are ``VALUE``,
    ``DELETE``, or ``MERGE`` (a pure append chain compacted above the
    bottom level, whose base may still live deeper).
    """
    current_key: Optional[bytes] = None
    newest_seq = 0
    operands: list[bytes] = []
    terminated = False
    saw_delete = False
    base = b""

    def emit() -> Optional[tuple[bytes, int, bytes, ValueType]]:
        if current_key is None:
            return None
        if saw_delete and not operands:
            if drop_tombstones:
                return None
            return current_key, newest_seq, b"", ValueType.DELETE
        value = base + b"".join(reversed(operands))
        if not terminated and not saw_delete and not drop_tombstones:
            return current_key, newest_seq, value, ValueType.MERGE
        return current_key, newest_seq, value, ValueType.VALUE

    for ikey, value in merged:
        parsed = decode_internal_key(ikey)
        if parsed.user_key != current_key:
            result = emit()
            if result is not None:
                yield result
            current_key = parsed.user_key
            newest_seq = parsed.sequence
            operands = []
            terminated = False
            saw_delete = False
            base = b""
        if terminated or saw_delete:
            continue
        if parsed.value_type is ValueType.VALUE:
            base = value
            terminated = True
        elif parsed.value_type is ValueType.DELETE:
            saw_delete = True
        else:
            operands.append(value)
    result = emit()
    if result is not None:
        yield result
