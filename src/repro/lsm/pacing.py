"""Stall-aware compaction pacing (Luo & Carey's stability argument).

LSM write stalls are a cliff, not a slope: foreground writes run at full
speed until L0 hits ``level0_slowdown_writes_trigger``, then fall off a
p99.9 cliff when the stop trigger parks them outright.  Luo & Carey ("On
Performance Stability in LSM-based Storage Systems") show the fix is
*pacing*: spread a small, smoothly-ramping delay across many writes and
spend the reclaimed slack on faster compaction, so the system never
reaches the triggers at all.

:class:`CompactionPacer` is that controller.  After every flush or
compaction installs a new version it re-derives a *pressure* in [0, 1]
from two signals — L0 file count between the compaction and slowdown
triggers, and pending compaction debt (bytes of merge work outstanding)
— and applies three effects:

- foreground writes are delayed by ``slowdown_delay * pressure**2``
  (quadratic: negligible at low pressure, approaching the configured
  slowdown delay as the cliff nears);
- the scheduler's COMPACTION :class:`~repro.io.scheduler.RateLimiter`
  rate is boosted from its base up to ``PACER_MAX_BOOST`` x linearly
  with pressure (spend background bandwidth when, and only when, it
  buys foreground stability);
- the recommended subcompaction fan-out scales from 1 up to
  ``max_subcompactions`` so parallel merge capacity follows debt.

Everything is a pure function of the observed version shape, so paced
runs stay deterministic under the simulated clock.
"""

from __future__ import annotations

from typing import Optional

from repro.lsm.manifest import Version
from repro.lsm.options import Options

#: rate-limiter multiplier at full pressure (1.0 at zero pressure)
PACER_MAX_BOOST = 4.0

#: compaction debt that counts as "full pressure", in multiples of the
#: write buffer (each flush adds roughly one buffer of L0 debt)
PACER_DEBT_BUFFERS = 8


class CompactionPacer:
    """Derives stall pressure from a version and applies pacing effects."""

    def __init__(
        self,
        options: Options,
        stats=None,
        scheduler=None,
    ) -> None:
        self._options = options
        self._stats = stats
        self._limiter = None
        self._base_rate = 0.0
        if scheduler is not None:
            from repro.io import Priority

            limiter = scheduler.class_limiter(Priority.COMPACTION)
            if limiter is not None:
                self._limiter = limiter
                self._base_rate = limiter.rate
        self.pressure = 0.0
        self.fanout = 1

    def observe(self, version: Version, pending_flushes: int = 0) -> None:
        """Re-derive pressure from the just-installed version; apply it.

        ``pending_flushes`` counts frozen memtables not yet flushed —
        imminent L0 files, so they weigh on the L0 signal exactly like
        installed ones (mirroring the write-stall accounting in
        :meth:`~repro.lsm.db.DB._pending_l0`).
        """
        options = self._options
        trigger = options.level0_file_num_compaction_trigger
        slowdown = options.level0_slowdown_writes_trigger
        span = max(1, slowdown - trigger)
        p_l0 = (version.num_files(0) + pending_flushes - trigger) / span
        debt = self.compaction_debt(version)
        debt_scale = max(1, PACER_DEBT_BUFFERS * options.write_buffer_size)
        p_debt = debt / debt_scale
        pressure = max(0.0, min(1.0, max(p_l0, p_debt)))
        adjusted = abs(pressure - self.pressure) > 1e-9
        self.pressure = pressure

        top = max(1, options.max_subcompactions)
        self.fanout = 1 + round(pressure * (top - 1))

        if self._limiter is not None:
            rate = self._base_rate * (
                1.0 + (PACER_MAX_BOOST - 1.0) * pressure
            )
            if rate != self._limiter.rate:
                self._limiter.set_rate(rate)
                adjusted = True

        if self._stats is not None:
            if adjusted:
                self._stats.pacer_adjustments += 1
            self._stats.pacer_rate = (
                self._limiter.rate if self._limiter is not None else 0.0
            )
            self._stats.pacer_fanout = self.fanout

    def compaction_debt(self, version: Version) -> int:
        """Bytes of merge work outstanding in ``version``.

        All of L0 once it passes the compaction trigger (every L0 file
        must be merged down in one pass), plus however far each deeper
        level sits over its byte budget.
        """
        options = self._options
        debt = 0
        if version.num_files(0) > options.level0_file_num_compaction_trigger:
            debt += version.level_bytes(0)
        for level in range(1, version.num_levels - 1):
            over = version.level_bytes(level) - options.max_bytes_for_level(
                level
            )
            if over > 0:
                debt += int(over)
        return debt

    def write_delay(self) -> float:
        """Per-write foreground delay (seconds) at the current pressure."""
        return self._options.slowdown_delay * self.pressure * self.pressure


__all__ = ["CompactionPacer", "PACER_MAX_BOOST", "PACER_DEBT_BUFFERS"]
