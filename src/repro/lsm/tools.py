"""Offline inspection of a database directory: verify, stats, dump.

The checkpoint operator's toolbox: after a job writes (or a node dies
mid-write), ``verify`` walks every live SSTable, checks block checksums
and key ordering, and cross-checks the manifest; ``stats`` summarizes the
level shape; ``dump`` prints user-visible keys.  Exposed as
``python -m repro.lsm <verify|stats|dump> <dbdir>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CorruptionError, NotFoundError
from repro.lsm.db import table_file_name
from repro.lsm.dbformat import decode_internal_key, internal_compare
from repro.lsm.env import Env, LocalFsEnv
from repro.lsm.manifest import VersionSet
from repro.lsm.options import Options
from repro.lsm.sstable import Table


@dataclass
class TableReport:
    """Verification outcome for one SSTable."""

    number: int
    level: int
    file_size: int
    entries: int = 0
    user_keys: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass
class VerifyReport:
    """Verification outcome for a whole database."""

    dbname: str
    tables: list[TableReport] = field(default_factory=list)
    manifest_errors: list[str] = field(default_factory=list)
    orphan_files: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.manifest_errors
            and all(t.ok for t in self.tables)
        )

    def summary(self) -> str:
        lines = [f"verify {self.dbname}: {'OK' if self.ok else 'CORRUPT'}"]
        for report in self.tables:
            status = "ok" if report.ok else "; ".join(report.errors)
            lines.append(
                f"  L{report.level} {table_file_name(report.number)} "
                f"{report.file_size}B {report.entries} entries: {status}"
            )
        for error in self.manifest_errors:
            lines.append(f"  manifest: {error}")
        for orphan in self.orphan_files:
            lines.append(f"  orphan (unreferenced) file: {orphan}")
        return "\n".join(lines)


def _load_versions(env: Env, dbname: str, options: Options) -> VersionSet:
    versions = VersionSet(env, dbname, options.num_levels)
    versions.recover()
    return versions


def verify_db(
    dbname: str,
    options: Optional[Options] = None,
    env: Optional[Env] = None,
) -> VerifyReport:
    """Check every live table's checksums, ordering, and bounds."""
    options = options or Options()
    env = env or LocalFsEnv()
    report = VerifyReport(dbname=dbname)
    try:
        versions = _load_versions(env, dbname, options)
    except (CorruptionError, NotFoundError) as exc:
        report.manifest_errors.append(str(exc))
        return report

    live = set()
    for level, meta in versions.current.all_files():
        live.add(meta.number)
        table_report = TableReport(
            number=meta.number, level=level, file_size=meta.file_size
        )
        report.tables.append(table_report)
        path = env.join(dbname, table_file_name(meta.number))
        try:
            if env.file_size(path) != meta.file_size:
                table_report.errors.append(
                    f"size mismatch: manifest says {meta.file_size}, "
                    f"file is {env.file_size(path)}"
                )
            table = Table(options, env.new_random_access_file(path))
        except (CorruptionError, NotFoundError) as exc:
            table_report.errors.append(f"unreadable: {exc}")
            continue
        previous = None
        seen_users = set()
        try:
            for ikey, _ in table:
                table_report.entries += 1
                parsed = decode_internal_key(ikey)
                seen_users.add(parsed.user_key)
                if previous is not None and internal_compare(previous, ikey) >= 0:
                    table_report.errors.append("keys out of order")
                    break
                previous = ikey
        except CorruptionError as exc:
            table_report.errors.append(f"corrupt block: {exc}")
            continue
        table_report.user_keys = len(seen_users)
        if table_report.entries:
            first = next(iter(table))[0]
            if internal_compare(first, meta.smallest) != 0:
                table_report.errors.append("smallest key disagrees with manifest")
            if previous is not None and internal_compare(
                previous, meta.largest
            ) != 0:
                table_report.errors.append("largest key disagrees with manifest")
        table.close()

    for name in env.get_children(dbname):
        if name.endswith(".sst"):
            number = int(name.split(".")[0])
            if number not in live:
                report.orphan_files.append(name)
    versions.close()
    return report


def db_stats(
    dbname: str,
    options: Optional[Options] = None,
    env: Optional[Env] = None,
) -> dict:
    """Level shape + aggregate counts (no data reads)."""
    options = options or Options()
    env = env or LocalFsEnv()
    versions = _load_versions(env, dbname, options)
    levels = []
    for level in range(versions.current.num_levels):
        files = versions.current.files[level]
        if files:
            levels.append(
                {
                    "level": level,
                    "files": len(files),
                    "bytes": sum(f.file_size for f in files),
                }
            )
    stats = {
        "dbname": dbname,
        "levels": levels,
        "total_files": sum(item["files"] for item in levels),
        "total_bytes": sum(item["bytes"] for item in levels),
        "last_sequence": versions.last_sequence,
        "next_file_number": versions.next_file_number,
    }
    versions.close()
    return stats


def dump_db(
    dbname: str,
    options: Optional[Options] = None,
    env: Optional[Env] = None,
    limit: Optional[int] = None,
):
    """Yield user-visible (key, value) pairs (opens the DB read-only)."""
    from repro.lsm.db import DB

    options = options or Options()
    options.create_if_missing = False
    db = DB.open(dbname, options, env=env)
    try:
        for index, (key, value) in enumerate(db.iterate()):
            if limit is not None and index >= limit:
                return
            yield key, value
    finally:
        db.close()
