"""A probabilistic skiplist — the MemTable's ordered index (the C0 tree).

LevelDB's memtable is a skiplist; we reproduce it rather than leaning on a
``dict``-plus-sort because the structure provides exactly what the write
path needs: O(log n) insert with already-sorted iteration at flush time,
plus cheap seek for reads.  The list is append-only (no node removal):
deletes in the LSM world are tombstone *insertions*, so removal support
would be dead code.

Randomness comes from a caller-seeded :class:`random.Random` so inserts are
reproducible under the discrete-event simulation.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

MAX_HEIGHT = 12
_BRANCHING = 4


class _Node:
    __slots__ = ("key", "nexts", "height")

    def __init__(self, key, height: int):
        self.key = key
        self.height = height  # cached; len(nexts) costs a call per probe
        self.nexts: list[Optional[_Node]] = [None] * height


class SkipList:
    """Ordered container of opaque keys with a pluggable ``less`` function.

    Keys are inserted once and never removed; duplicate keys (where
    ``not less(a, b) and not less(b, a)``) are rejected because the
    memtable encodes the sequence number into every key, making true
    duplicates a logic error.
    """

    def __init__(self, less: Callable = None, seed: int = 0):
        self._less = less if less is not None else (lambda a, b: a < b)
        self._rng = random.Random(seed)
        self._head = _Node(None, MAX_HEIGHT)
        self._height = 1
        self._count = 0
        # Reused insert scratch: one list allocation per skiplist, not one
        # per insert.  Levels >= the current height are stale between
        # inserts, but insert() only reads levels it has just written.
        self._prevs: list[_Node] = [self._head] * MAX_HEIGHT
        # Tail hint: the last node on every level.  When an insert's key
        # sorts after the current maximum (the checkpoint write pattern —
        # ascending keys), its predecessors ARE the per-level tails, so
        # the O(log n) search is skipped entirely.
        self._tails: list[_Node] = [self._head] * MAX_HEIGHT
        self._max_node: Optional[_Node] = None

    def __len__(self) -> int:
        return self._count

    def _random_height(self) -> int:
        height = 1
        while height < MAX_HEIGHT and self._rng.randrange(_BRANCHING) == 0:
            height += 1
        return height

    def _find_greater_or_equal(
        self, key, prevs: Optional[list[_Node]] = None
    ) -> Optional[_Node]:
        """First node with node.key >= key; fills ``prevs`` per level."""
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.nexts[level]
            if nxt is not None and self._less(nxt.key, key):
                node = nxt
            else:
                if prevs is not None:
                    prevs[level] = node
                if level == 0:
                    return nxt
                level -= 1

    def insert(self, key) -> None:
        """Insert ``key``; raises ``ValueError`` on duplicates."""
        max_node = self._max_node
        if max_node is not None and self._less(max_node.key, key):
            prevs = self._tails  # append-at-end fast path: O(1) amortized
        else:
            prevs = self._prevs
            nxt = self._find_greater_or_equal(key, prevs)
            if nxt is not None and not self._less(key, nxt.key):
                raise ValueError("duplicate key inserted into skiplist")
        height = self._random_height()
        if height > self._height:
            for level in range(self._height, height):
                prevs[level] = self._head
            self._height = height
        node = _Node(key, height)
        nexts = node.nexts
        tails = self._tails
        for level in range(height):
            prev = prevs[level]
            nxt_here = prev.nexts[level]
            nexts[level] = nxt_here
            prev.nexts[level] = node
            if nxt_here is None:  # node is now the last one on this level
                tails[level] = node
        if nexts[0] is None:
            self._max_node = node
        self._count += 1

    def contains(self, key) -> bool:
        node = self._find_greater_or_equal(key)
        return node is not None and not self._less(key, node.key)

    def seek(self, key):
        """Iterate keys >= ``key`` in order."""
        node = self._find_greater_or_equal(key)
        while node is not None:
            yield node.key
            node = node.nexts[0]

    def __iter__(self) -> Iterator:
        node = self._head.nexts[0]
        while node is not None:
            yield node.key
            node = node.nexts[0]

    def first(self):
        """Smallest key, or None when empty."""
        node = self._head.nexts[0]
        return None if node is None else node.key

    def last(self):
        """Largest key, or None when empty (O(log n) walk along top levels)."""
        node = self._head
        level = self._height - 1
        while True:
            nxt = node.nexts[level]
            if nxt is not None:
                node = nxt
            elif level == 0:
                return None if node is self._head else node.key
            else:
                level -= 1
