"""Write-ahead log with LevelDB's exact record framing.

The log is a sequence of 32 KiB blocks.  Each record carries a 7-byte
header — masked CRC (fixed32), payload length (fixed16), record type — and
payloads that straddle block boundaries are split into FIRST/MIDDLE/LAST
fragments.  A payload that fits whole is a FULL record.  Block tails of
fewer than 7 bytes are zero-padded.

The paper's LSMIO *disables* the WAL (§3.1.1) because checkpoints carry an
explicit write barrier; the implementation is still complete here because
(a) the engine is a general library and (b) the ablation benchmark
``bench_ablations.py`` quantifies exactly what disabling it buys.
"""

from __future__ import annotations

import enum
import struct

from repro.errors import CorruptionError
from repro.lsm.env import SequentialFile, WritableFile
from repro.lsm.options import ChecksumType

BLOCK_SIZE = 32 * 1024
HEADER_SIZE = 7

_HEADER = struct.Struct("<IHB")  # masked crc, length, type


class RecordType(enum.IntEnum):
    # 0 is reserved for zero-padded regions.
    FULL = 1
    FIRST = 2
    MIDDLE = 3
    LAST = 4


def _mask(crc: int) -> int:
    return (((crc >> 15) | (crc << 17)) + 0xA282EAD8) & 0xFFFFFFFF


#: one-byte strings per record type, so checksumming never concatenates
_TYPE_BYTES = [bytes([t]) for t in range(max(RecordType) + 1)]
_PADDING = b"\x00" * HEADER_SIZE


class LogWriter:
    """Appends framed records to a :class:`WritableFile`.

    Each logical record is assembled — headers, fragments, block padding —
    into one reusable scratch buffer and handed to the destination as a
    single append.  Fragments are ``memoryview`` slices of the caller's
    payload and the checksum runs incrementally over (type byte ‖ view),
    so the only per-byte copy on the write path is scratch → destination.
    """

    def __init__(
        self,
        dest: WritableFile,
        checksum: ChecksumType = ChecksumType.ZLIB_CRC32,
    ):
        self._dest = dest
        self._block_offset = 0
        self._crc2 = checksum.incremental()
        self._checksum_enabled = checksum is not ChecksumType.NONE
        self._scratch = bytearray()

    def add_record(self, payload: bytes) -> None:
        """Append one logical record, fragmenting across blocks as needed."""
        left = memoryview(payload)
        scratch = self._scratch
        del scratch[:]
        begin = True
        while True:
            leftover = BLOCK_SIZE - self._block_offset
            if leftover < HEADER_SIZE:
                if leftover > 0:
                    scratch += _PADDING[:leftover]
                self._block_offset = 0
                leftover = BLOCK_SIZE
            avail = leftover - HEADER_SIZE
            fragment = left[:avail]
            left = left[avail:]
            end = len(left) == 0
            if begin and end:
                rtype = RecordType.FULL
            elif begin:
                rtype = RecordType.FIRST
            elif end:
                rtype = RecordType.LAST
            else:
                rtype = RecordType.MIDDLE
            if self._checksum_enabled:
                # LevelDB checksums the type byte followed by the payload.
                crc = _mask(self._crc2(fragment, self._crc2(_TYPE_BYTES[rtype])))
            else:
                crc = 0
            scratch += _HEADER.pack(crc, len(fragment), rtype)
            scratch += fragment
            self._block_offset += HEADER_SIZE + len(fragment)
            begin = False
            if end:
                break
        # Ownership handoff: the destination keeps the framed record and
        # the writer re-arms with a fresh scratch — no final copy.
        self._scratch = bytearray()
        self._dest.append_owned(scratch)

    def flush(self) -> None:
        self._dest.flush()

    def sync(self) -> None:
        self._dest.sync()

    def close(self) -> None:
        self._dest.close()


class LogReader:
    """Reads back records, tolerating a truncated tail (crash recovery).

    A clean corruption mid-log (bad CRC, impossible fragment sequence)
    raises :class:`CorruptionError` unless ``allow_partial`` is set, in
    which case reading stops at the damage — the LevelDB recovery policy
    for the newest log segment.
    """

    def __init__(
        self,
        src: SequentialFile,
        checksum: ChecksumType = ChecksumType.ZLIB_CRC32,
        allow_partial: bool = True,
    ):
        self._src = src
        self._crc_fn = checksum.function()
        self._verify = checksum is not ChecksumType.NONE
        self._allow_partial = allow_partial
        self._block = b""
        self._block_pos = 0
        self._eof = False

    def _next_fragment(self):
        """Return (type, payload) or None at end of readable data."""
        while True:
            if self._block_pos + HEADER_SIZE > len(self._block):
                if self._eof:
                    return None
                self._block = self._src.read(BLOCK_SIZE)
                self._block_pos = 0
                if len(self._block) < BLOCK_SIZE:
                    self._eof = True
                if len(self._block) < HEADER_SIZE:
                    return None
            crc, length, rtype = _HEADER.unpack_from(self._block, self._block_pos)
            if rtype == 0 and length == 0:
                # Zero padding: skip to next block.
                self._block_pos = len(self._block)
                continue
            start = self._block_pos + HEADER_SIZE
            if start + length > len(self._block):
                if self._allow_partial:
                    return None
                raise CorruptionError("truncated WAL fragment")
            payload = self._block[start : start + length]
            self._block_pos = start + length
            if self._verify:
                expected = _mask(self._crc_fn(bytes([rtype]) + payload))
                if expected != crc:
                    if self._allow_partial:
                        return None
                    raise CorruptionError("WAL fragment checksum mismatch")
            try:
                return RecordType(rtype), payload
            except ValueError as exc:
                if self._allow_partial:
                    return None
                raise CorruptionError(f"bad WAL record type {rtype}") from exc

    def __iter__(self):
        """Yield complete logical records."""
        pending: list[bytes] = []
        in_fragmented = False
        while True:
            item = self._next_fragment()
            if item is None:
                # A dangling FIRST/MIDDLE chain means the writer crashed
                # mid-record; the partial record is discarded.
                return
            rtype, payload = item
            if rtype is RecordType.FULL:
                if in_fragmented and not self._allow_partial:
                    raise CorruptionError("FULL record inside fragment chain")
                pending.clear()
                in_fragmented = False
                yield bytes(payload)
            elif rtype is RecordType.FIRST:
                if in_fragmented and not self._allow_partial:
                    raise CorruptionError("FIRST record inside fragment chain")
                pending = [payload]
                in_fragmented = True
            elif rtype is RecordType.MIDDLE:
                if not in_fragmented:
                    if self._allow_partial:
                        continue
                    raise CorruptionError("MIDDLE record outside fragment chain")
                pending.append(payload)
            else:  # LAST
                if not in_fragmented:
                    if self._allow_partial:
                        continue
                    raise CorruptionError("LAST record outside fragment chain")
                pending.append(payload)
                in_fragmented = False
                yield b"".join(pending)
                pending = []

    def close(self) -> None:
        self._src.close()
