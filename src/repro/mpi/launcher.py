"""SPMD launcher: the simulated ``mpiexec``.

``run_world(n, main)`` spawns ``main(comm, *args, **kwargs)`` once per
rank inside a discrete-event engine (creating one if not supplied), runs
to completion, and returns the per-rank results — the moral equivalent of
``mpiexec -n <n> python script.py`` with one task per node (§A.1.6).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import sim
from repro.mpi.comm import World
from repro.mpi.network import Network


def run_world(
    size: int,
    main: Callable[..., Any],
    *args: Any,
    engine: Optional[sim.Engine] = None,
    network: Optional[Network] = None,
    world_setup: Optional[Callable[[World], None]] = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``main(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    Returns ``[result_rank0, ..., result_rank{n-1}]``.  If ``engine`` is
    provided it must not have been run yet for these processes; otherwise a
    fresh engine is created and closed afterwards.

    ``world_setup`` runs once (with the :class:`World`) before ranks start,
    letting callers attach shared simulated hardware (e.g. the Lustre
    cluster) to the same engine.
    """
    own_engine = engine is None
    engine = engine or sim.Engine()
    try:
        world = World(engine, size, network=network)
        if world_setup is not None:
            world_setup(world)
        procs = [
            engine.spawn(
                main, world.comm(rank), *args, name=f"rank{rank}", **kwargs
            )
            for rank in range(size)
        ]
        engine.run()
        return [proc.result for proc in procs]
    finally:
        if own_engine:
            engine.close()


__all__ = ["run_world"]
