"""Interconnect cost model for the simulated MPI.

A message of ``n`` bytes costs ``latency + n / bandwidth`` seconds on the
wire (the classic Hockney model), and each rank's NIC serializes its own
outbound transfers.  Defaults approximate the paper's cluster class
(Viking: 25 GbE-era fabric on Intel Xeon 6138 nodes).
"""

from __future__ import annotations

import sys
from typing import Any

import numpy as np

from repro.errors import InvalidArgumentError
from repro.util.humanize import parse_size


def message_size(obj: Any) -> int:
    """Estimate the wire size of a Python object in bytes.

    Buffers report their true size; containers are summed recursively;
    everything else falls back to ``sys.getsizeof`` (close enough for the
    control-plane messages the benchmarks exchange).
    """
    if obj is None:
        return 1
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(message_size(item) for item in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            message_size(k) + message_size(v) for k, v in obj.items()
        )
    return sys.getsizeof(obj)


class Network:
    """Hockney-model interconnect parameters."""

    def __init__(
        self,
        latency: float = 2e-6,
        bandwidth: float | str = "2.8G",
    ):
        self.latency = float(latency)
        self.bandwidth = float(parse_size(bandwidth))
        if self.latency < 0:
            raise InvalidArgumentError(f"negative latency: {latency}")
        if self.bandwidth <= 0:
            raise InvalidArgumentError(f"non-positive bandwidth: {bandwidth}")

    def transfer_time(self, nbytes: int) -> float:
        """Wire time for one message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def __repr__(self) -> str:
        return (
            f"Network(latency={self.latency!r}, "
            f"bandwidth={self.bandwidth / (1 << 30):.2f} GiB/s)"
        )
