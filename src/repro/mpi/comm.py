"""The simulated communicator: point-to-point and collective operations.

Semantics follow mpi4py's lowercase (object) API.  Collectives are built
from point-to-point messages using the standard algorithms (binomial trees
for bcast/gather/reduce, ring-free linear alltoall), so their *time* scales
the way a real MPI's would — O(log p) tree depth with per-message Hockney
costs — and their traffic shows up on the simulated NICs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import sim
from repro.errors import InvalidArgumentError
from repro.mpi.network import Network, message_size
from repro.sim.resources import Resource, Store
from repro.trace import runtime as _trace

ANY_SOURCE = -1


class World:
    """Shared state for one MPI world: mailboxes, barrier, NICs."""

    def __init__(self, engine: sim.Engine, size: int, network: Optional[Network] = None):
        if size < 1:
            raise InvalidArgumentError(f"world size must be >= 1, got {size}")
        self.engine = engine
        self.size = size
        self.network = network or Network()
        # mailboxes[dst] maps (src, tag) -> Store of payloads.
        self._mailboxes: list[dict[tuple[int, int], Store]] = [
            {} for _ in range(size)
        ]
        self._any_source: list[Store] = [
            Store(engine, name=f"rank{i}.anysrc") for i in range(size)
        ]
        self._nics: list[Resource] = [
            Resource(engine, capacity=1, name=f"nic{i}") for i in range(size)
        ]
        self._barrier_count = 0
        self._barrier_event = sim.Event(engine, name="barrier-0")
        self._barrier_generation = 0
        self._channels: dict[tuple[int, str], Store] = {}

    def mailbox(self, dst: int, src: int, tag: int) -> Store:
        key = (src, tag)
        box = self._mailboxes[dst].get(key)
        if box is None:
            box = Store(self.engine, name=f"rank{dst}.from{src}.tag{tag}")
            self._mailboxes[dst][key] = box
        return box

    def comm(self, rank: int) -> "Communicator":
        return Communicator(self, rank)

    def channel(self, rank: int, key: str) -> Store:
        """A named mailbox on ``rank``, isolated from the tag machinery.

        Service loops (e.g. LSMIO's collective aggregator) drain their own
        channel without disturbing ``recv(ANY_SOURCE)`` users.
        """
        box = self._channels.get((rank, key))
        if box is None:
            box = Store(self.engine, name=f"rank{rank}.chan.{key}")
            self._channels[(rank, key)] = box
        return box


class Communicator:
    """One rank's handle on the world (mpi4py ``COMM_WORLD`` analogue)."""

    def __init__(self, world: World, rank: int):
        if not 0 <= rank < world.size:
            raise InvalidArgumentError(
                f"rank {rank} out of range for world size {world.size}"
            )
        self.world = world
        self.rank = rank

    @property
    def size(self) -> int:
        return self.world.size

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send: occupies this rank's NIC for the wire time."""
        if not 0 <= dest < self.size:
            raise InvalidArgumentError(f"bad destination rank {dest}")
        if dest == self.rank:
            # Self-sends skip the NIC (rendezvous through local memory).
            self.world.mailbox(dest, self.rank, tag).put(obj)
            return
        nbytes = message_size(obj)
        tracer = _trace.TRACER
        span = None
        if tracer is not None:
            span = tracer.span(
                "mpi", "send", src=self.rank, dest=dest, tag=tag,
                nbytes=nbytes,
            )
        try:
            with self.world._nics[self.rank].request():
                sim.sleep(self.world.network.transfer_time(nbytes))
            self.world.mailbox(dest, self.rank, tag).put(obj)
            self.world._any_source[dest].put((self.rank, tag))
        finally:
            if span is not None:
                span.finish()

    def recv(self, source: int = ANY_SOURCE, tag: int = 0) -> Any:
        """Blocking receive.

        ``source=ANY_SOURCE`` matches messages from any rank with the
        given tag (arrival order).
        """
        tracer = _trace.TRACER
        if tracer is not None:
            with tracer.span("mpi", "recv", rank=self.rank, src=source,
                             tag=tag):
                return self._recv(source, tag)
        return self._recv(source, tag)

    def _recv(self, source: int, tag: int) -> Any:
        if source == ANY_SOURCE:
            # Hold non-matching arrival notices aside while scanning, then
            # re-post them; re-posting inside the loop would spin forever
            # on a notice queue that contains only other tags.
            skipped: list[tuple[int, int]] = []
            try:
                while True:
                    src, msg_tag = self.world._any_source[self.rank].get()
                    if msg_tag == tag:
                        return self.world.mailbox(self.rank, src, tag).get()
                    skipped.append((src, msg_tag))
            finally:
                for notice in skipped:
                    self.world._any_source[self.rank].put(notice)
        if not 0 <= source < self.size:
            raise InvalidArgumentError(f"bad source rank {source}")
        return self.world.mailbox(self.rank, source, tag).get()

    def send_lw(self, obj: Any, dest: int, tag: int = 0):
        """Light-process twin of :meth:`send` (``yield from`` it)."""
        if not 0 <= dest < self.size:
            raise InvalidArgumentError(f"bad destination rank {dest}")
        if dest == self.rank:
            # Self-sends skip the NIC (rendezvous through local memory).
            self.world.mailbox(dest, self.rank, tag).put(obj)
            return
        nbytes = message_size(obj)
        tracer = _trace.TRACER
        span = None
        if tracer is not None:
            span = tracer.span(
                "mpi", "send", src=self.rank, dest=dest, tag=tag,
                nbytes=nbytes,
            )
        try:
            nic = self.world._nics[self.rank]
            yield from nic.acquire_lw()
            try:
                yield self.world.network.transfer_time(nbytes)
            finally:
                nic.release()
            self.world.mailbox(dest, self.rank, tag).put(obj)
            self.world._any_source[dest].put((self.rank, tag))
        finally:
            if span is not None:
                span.finish()

    def recv_lw(self, source: int = ANY_SOURCE, tag: int = 0):
        """Light-process twin of :meth:`recv` (``yield from`` it)."""
        if source == ANY_SOURCE:
            skipped: list[tuple[int, int]] = []
            try:
                while True:
                    src, msg_tag = yield from (
                        self.world._any_source[self.rank].get_lw()
                    )
                    if msg_tag == tag:
                        return (
                            yield from self.world.mailbox(
                                self.rank, src, tag
                            ).get_lw()
                        )
                    skipped.append((src, msg_tag))
            finally:
                for notice in skipped:
                    self.world._any_source[self.rank].put(notice)
        if not 0 <= source < self.size:
            raise InvalidArgumentError(f"bad source rank {source}")
        return (
            yield from self.world.mailbox(self.rank, source, tag).get_lw()
        )

    def sendrecv(
        self, obj: Any, dest: int, source: int = ANY_SOURCE, tag: int = 0
    ) -> Any:
        """Exchange without deadlock: deposit first, then receive."""
        # Deposit into the destination mailbox before blocking on our own;
        # the wire time is still paid via a zero-capacity trick: charge
        # the NIC after the deposit (both sides progress).
        if dest != self.rank:
            nbytes = message_size(obj)
            self.world.mailbox(dest, self.rank, tag).put(obj)
            self.world._any_source[dest].put((self.rank, tag))
            with self.world._nics[self.rank].request():
                sim.sleep(self.world.network.transfer_time(nbytes))
        else:
            self.world.mailbox(dest, self.rank, tag).put(obj)
        return self.recv(source=source, tag=tag)

    def channel_send(self, key: str, obj: Any, dest: int) -> None:
        """Send into ``dest``'s named channel (same wire cost as send)."""
        if not 0 <= dest < self.size:
            raise InvalidArgumentError(f"bad destination rank {dest}")
        if dest != self.rank:
            nbytes = message_size(obj)
            tracer = _trace.TRACER
            span = None
            if tracer is not None:
                span = tracer.span(
                    "mpi", "channel_send", src=self.rank, dest=dest,
                    key=key, nbytes=nbytes,
                )
            try:
                with self.world._nics[self.rank].request():
                    sim.sleep(self.world.network.transfer_time(nbytes))
            finally:
                if span is not None:
                    span.finish()
        self.world.channel(dest, key).put(obj)

    def channel_recv(self, key: str) -> Any:
        """Blocking take from this rank's named channel."""
        tracer = _trace.TRACER
        if tracer is not None:
            with tracer.span("mpi", "channel_recv", rank=self.rank, key=key):
                return self.world.channel(self.rank, key).get()
        return self.world.channel(self.rank, key).get()

    def channel_send_lw(self, key: str, obj: Any, dest: int):
        """Light-process twin of :meth:`channel_send` (``yield from`` it)."""
        if not 0 <= dest < self.size:
            raise InvalidArgumentError(f"bad destination rank {dest}")
        if dest != self.rank:
            nbytes = message_size(obj)
            tracer = _trace.TRACER
            span = None
            if tracer is not None:
                span = tracer.span(
                    "mpi", "channel_send", src=self.rank, dest=dest,
                    key=key, nbytes=nbytes,
                )
            try:
                nic = self.world._nics[self.rank]
                yield from nic.acquire_lw()
                try:
                    yield self.world.network.transfer_time(nbytes)
                finally:
                    nic.release()
            finally:
                if span is not None:
                    span.finish()
        self.world.channel(dest, key).put(obj)

    def channel_recv_lw(self, key: str):
        """Light-process twin of :meth:`channel_recv` (``yield from`` it)."""
        return (yield from self.world.channel(self.rank, key).get_lw())

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    _BARRIER_TAG = -101
    _COLL_TAG = -102

    def barrier(self) -> None:
        """Block until every rank in the world has entered the barrier."""
        tracer = _trace.TRACER
        if tracer is not None:
            with tracer.span("mpi", "barrier", rank=self.rank):
                return self._barrier()
        return self._barrier()

    def _barrier(self) -> None:
        world = self.world
        world._barrier_count += 1
        gate = world._barrier_event
        if world._barrier_count == world.size:
            world._barrier_count = 0
            world._barrier_generation += 1
            world._barrier_event = sim.Event(
                world.engine, name=f"barrier-{world._barrier_generation}"
            )
            # A real barrier costs ~latency * log2(p) on a tree network.
            depth = max(1, (world.size - 1).bit_length())
            sim.sleep(world.network.latency * depth)
            gate.succeed()
        else:
            sim.wait(gate)

    def barrier_lw(self):
        """Light-process twin of :meth:`barrier` (``yield from`` it).

        Interoperates with thread-backed ranks in :meth:`barrier`: both
        forms share the world's count/generation state and gate event.
        """
        world = self.world
        world._barrier_count += 1
        gate = world._barrier_event
        if world._barrier_count == world.size:
            world._barrier_count = 0
            world._barrier_generation += 1
            world._barrier_event = sim.Event(
                world.engine, name=f"barrier-{world._barrier_generation}"
            )
            # A real barrier costs ~latency * log2(p) on a tree network.
            depth = max(1, (world.size - 1).bit_length())
            yield world.network.latency * depth
            gate.succeed()
        else:
            yield gate

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the object on every rank."""
        vrank = (self.rank - root) % self.size
        mask = 1
        while mask < self.size:
            if vrank & (mask - 1) == 0:
                if vrank & mask:
                    src = (vrank - mask + root) % self.size
                    obj = self.recv(source=src, tag=self._COLL_TAG)
                    break
            mask <<= 1
        # Forward down the tree.
        mask >>= 1
        while mask > 0:
            if vrank & (mask - 1) == 0 and not vrank & mask:
                peer = vrank + mask
                if peer < self.size:
                    dest = (peer + root) % self.size
                    self.send(obj, dest, tag=self._COLL_TAG)
            mask >>= 1
        return obj

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        """Linear gather; root returns a list indexed by rank."""
        if self.rank == root:
            out: list[Any] = [None] * self.size
            out[self.rank] = obj
            for _ in range(self.size - 1):
                src, value = self.recv(source=ANY_SOURCE, tag=self._COLL_TAG - 1)
                out[src] = value
            return out
        self.send((self.rank, obj), root, tag=self._COLL_TAG - 1)
        return None

    def scatter(self, objs: Optional[list], root: int = 0) -> Any:
        """Root distributes ``objs[i]`` to rank i."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise InvalidArgumentError(
                    "scatter needs a list with one item per rank"
                )
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest, tag=self._COLL_TAG - 2)
            return objs[root]
        return self.recv(source=root, tag=self._COLL_TAG - 2)

    def allgather(self, obj: Any) -> list:
        """Gather to rank 0, then broadcast the assembled list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any:
        """Binomial-tree reduction with a Python combiner (default ``+``)."""
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        vrank = (self.rank - root) % self.size
        value = obj
        mask = 1
        while mask < self.size:
            if vrank & mask:
                dest = (vrank - mask + root) % self.size
                self.send(value, dest, tag=self._COLL_TAG - 3)
                return None if self.rank != root else value
            peer = vrank | mask
            if peer < self.size:
                src = (peer + root) % self.size
                other = self.recv(source=src, tag=self._COLL_TAG - 3)
                value = op(value, other)
            mask <<= 1
        return value if self.rank == root else None

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce to rank 0, broadcast the result."""
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    def alltoall(self, objs: list) -> list:
        """Each rank sends ``objs[j]`` to rank j; returns received list.

        This is the exchange phase of two-phase collective I/O, so its
        cost matters for Figure 9/10.
        """
        if len(objs) != self.size:
            raise InvalidArgumentError(
                "alltoall needs a list with one item per rank"
            )
        out: list[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        # Deposit everything (non-blocking semantics), then pay for our own
        # outbound wire time, then collect.
        pending = 0
        for dest in range(self.size):
            if dest == self.rank:
                continue
            self.world.mailbox(dest, self.rank, self._COLL_TAG - 4).put(
                objs[dest]
            )
            pending += message_size(objs[dest])
        if pending:
            with self.world._nics[self.rank].request():
                sim.sleep(
                    self.world.network.latency * (self.size - 1)
                    + pending / self.world.network.bandwidth
                )
        for src in range(self.size):
            if src == self.rank:
                continue
            out[src] = self.world.mailbox(
                self.rank, src, self._COLL_TAG - 4
            ).get()
        return out

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size})"
