"""A simulated MPI: SPMD ranks as discrete-event processes.

The paper uses MPI for benchmark barriers ("we started measuring right
after the first MPI barrier ... until after the last I/O operation and a
second MPI barrier", §A.1.7) and proposes collective I/O over MPI as future
work.  This package provides a deterministic, single-machine stand-in with
mpi4py-shaped semantics:

- :func:`run_world` launches N ranks (one simulated process each — the
  paper runs one task per node, §A.1.6);
- :class:`Communicator` offers ``barrier``, ``send``/``recv``, ``bcast``,
  ``scatter``/``gather``, ``allgather``, ``reduce``/``allreduce``,
  ``alltoall``;
- :class:`Network` models message cost (latency + size/bandwidth) and
  per-rank NIC serialization.

Messages move in simulated time, so communication cost shows up in the
benchmark clocks exactly where a real cluster would pay it.
"""

from repro.mpi.network import Network
from repro.mpi.comm import Communicator, World
from repro.mpi.launcher import run_world

__all__ = ["Communicator", "Network", "World", "run_world"]
