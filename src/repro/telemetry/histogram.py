"""Log-bucketed latency histograms (HDR-style, fixed boundaries).

A :class:`LogHistogram` buckets positive samples geometrically: the
binary exponent from :func:`math.frexp` selects a power-of-two band and
the mantissa selects one of :data:`SUB_BUCKETS` linear sub-buckets
within it, bounding relative quantile error at ``1 / (2*SUB_BUCKETS)``
(~6% at the default 8).  Bucket boundaries are a pure function of the
index — no per-histogram state, no rescaling — so two histograms (or a
snapshot taken at any moment) merge deterministically: merging is just
adding counts for equal indices.

Recording is allocation-light: one :func:`math.frexp`, two int ops, and
a dict bucket increment — cheap enough to leave on for every commit,
RPC, and scheduler admission in a run (the PR 3 tracer, by contrast,
stores an object per event).  Recording reads no clock and no RNG, so
an instrumented run is bit-identical to an uninstrumented one.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

#: linear sub-buckets per power-of-two band (relative error ~1/16)
SUB_BUCKETS = 8

#: the quantiles every snapshot extracts, keyed by their snapshot name
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999))


def bucket_index(value: float) -> int:
    """The bucket holding ``value`` (> 0).  Pure function, total order."""
    mantissa, exponent = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
    sub = int((mantissa - 0.5) * (2 * SUB_BUCKETS))
    if sub >= SUB_BUCKETS:  # mantissa rounding at the band edge
        sub = SUB_BUCKETS - 1
    return exponent * SUB_BUCKETS + sub


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper edge of bucket ``index`` (its reported value)."""
    exponent, sub = divmod(index, SUB_BUCKETS)
    return math.ldexp(0.5 + (sub + 1) / (2 * SUB_BUCKETS), exponent)


class LogHistogram:
    """Sparse fixed-boundary histogram with deterministic merge."""

    __slots__ = ("buckets", "zeros", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.zeros = 0        #: samples <= 0 (zero-duration waits)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        """Record one sample (seconds, bytes, anything non-negative)."""
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (fixed boundaries: exact)."""
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1]: the covering bucket's upper
        edge, clamped to the exact observed min/max."""
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min or 0.0
        rank = q * (self.count - 1)
        seen = self.zeros
        if rank < seen or not self.buckets:
            return 0.0 if self.zeros else (self.min or 0.0)
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank < seen:
                value = bucket_upper_bound(index)
                if self.max is not None and value > self.max:
                    value = self.max
                if self.min is not None and value < self.min:
                    value = self.min
                return value
        return self.max if self.max is not None else 0.0

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Flat stats dict (the MetricsRegistry / export form)."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }
        for name, q in QUANTILES:
            out[name] = self.quantile(q)
        return out

    def to_dict(self) -> dict:
        """Full serialized form (buckets keyed by stringified index)."""
        out = self.snapshot()
        out["zeros"] = self.zeros
        out["buckets"] = {str(i): self.buckets[i] for i in sorted(self.buckets)}
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        hist = cls()
        hist.zeros = int(data.get("zeros", 0))
        hist.count = int(data.get("count", 0))
        hist.sum = float(data.get("sum", 0.0))
        hist.min = data.get("min") if data.get("count") else None
        hist.max = data.get("max") if data.get("count") else None
        hist.buckets = {
            int(i): int(n) for i, n in data.get("buckets", {}).items()
        }
        return hist

    @classmethod
    def of(cls, samples: Iterable[float]) -> "LogHistogram":
        hist = cls()
        for sample in samples:
            hist.record(sample)
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, p50={self.quantile(0.5):.3g}, "
            f"p99={self.quantile(0.99):.3g}, max={self.max})"
        )
