"""``repro.telemetry``: always-on histograms, gauge sampling, profiling.

Three instruments layered on the PR 3 trace runtime, all off by default
and free when off (one module-global read + identity check per site):

- :class:`~repro.telemetry.histogram.LogHistogram` — fixed-boundary
  log-bucketed latency distributions at the choke points of all five
  layers, federated through :class:`~repro.trace.metrics.MetricsRegistry`
  under the ``telemetry.*`` namespace with p50/p90/p99/p99.9 snapshots;
- :class:`~repro.telemetry.sampler.GaugeSampler` — a sim-clock
  time-series of live gauges (queue depths, memtable bytes, compaction
  debt, BB occupancy), driven by the engine dispatch loop so sampled
  runs stay bit-identical to unsampled ones;
- :class:`~repro.telemetry.profiler.EngineProfiler` — wall-clock
  per-callback-site attribution for the discrete-event engine
  (``python -m repro.trace profile``).

Quickstart::

    from repro import telemetry

    tele = telemetry.install(sampler=telemetry.GaugeSampler(0.01))
    ...  # run a workload
    payload = tele.to_payload()          # histograms + series (+ profile)
    telemetry.uninstall()

The invariant mirrors tracing: enabling telemetry never advances the
sim clock and never touches an RNG, so simulated results are
bit-identical either way; only the wall-clock profiler's numbers are
nondeterministic, and they live strictly outside the sim clock.
"""

from __future__ import annotations

from typing import Optional

from repro.trace import runtime as _runtime
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.profiler import EngineProfiler
from repro.telemetry.sampler import GaugeSampler

__all__ = [
    "LogHistogram",
    "GaugeSampler",
    "EngineProfiler",
    "Telemetry",
    "install",
    "uninstall",
    "current",
    "session",
    "validate_payload",
]

#: namespace under which the installed Telemetry registers its snapshot
METRICS_NAMESPACE = "telemetry"


class Telemetry:
    """The histogram federation point; optionally owns sampler/profiler."""

    def __init__(
        self,
        sampler: Optional[GaugeSampler] = None,
        profiler: Optional[EngineProfiler] = None,
    ):
        self.histograms: dict[str, LogHistogram] = {}
        self.sampler = sampler
        self.profiler = profiler

    # -- recording (the hot-path API) --------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogHistogram()
        hist.record(value)

    def histogram(self, name: str) -> LogHistogram:
        """Get-or-create histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LogHistogram()
        return hist

    # -- MetricsRegistry source -------------------------------------------

    def snapshot(self) -> dict:
        """Nested ``{hist: {count, sum, min, max, p50..p999}}`` — flattened
        by the registry into ``telemetry.<hist>.<stat>`` keys."""
        return {
            name: self.histograms[name].snapshot()
            for name in sorted(self.histograms)
        }

    # -- export -----------------------------------------------------------

    def to_payload(self, meta: Optional[dict] = None) -> dict:
        """The raw-dump form consumed by ``python -m repro.bench report``."""
        payload = {
            "format": "repro-telemetry",
            "version": 1,
            "meta": dict(meta or {}),
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "series": self.sampler.to_dict() if self.sampler else {},
        }
        if self.sampler is not None:
            payload["sampler"] = {
                "interval": self.sampler.interval,
                "retention": self.sampler.retention,
                "samples_taken": self.sampler.samples_taken,
            }
        if self.profiler is not None:
            payload["profile"] = self.profiler.snapshot()
        return payload

    def clear(self) -> None:
        self.histograms.clear()
        if self.sampler is not None:
            self.sampler.clear()
        if self.profiler is not None:
            self.profiler.clear()


def validate_payload(doc: dict) -> list[str]:
    """Schema-check a telemetry dump; returns problems (empty = valid)."""
    problems = []
    if doc.get("format") != "repro-telemetry":
        problems.append(f"format is {doc.get('format')!r}, "
                        f"expected 'repro-telemetry'")
    if not isinstance(doc.get("histograms"), dict):
        problems.append("histograms is not a dict")
    else:
        for name, hist in doc["histograms"].items():
            for key in ("count", "sum", "min", "max",
                        "p50", "p90", "p99", "p999", "buckets"):
                if key not in hist:
                    problems.append(f"histogram {name!r} missing {key!r}")
            buckets = hist.get("buckets")
            if isinstance(buckets, dict):
                bucketed = sum(buckets.values()) + hist.get("zeros", 0)
                if bucketed != hist.get("count"):
                    problems.append(
                        f"histogram {name!r} bucket counts {bucketed} != "
                        f"count {hist.get('count')}"
                    )
    if not isinstance(doc.get("series"), dict):
        problems.append("series is not a dict")
    else:
        for name, col in doc["series"].items():
            ts = col.get("ts")
            values = col.get("value")
            if not isinstance(ts, list) or not isinstance(values, list):
                problems.append(f"series {name!r} is not columnar")
                continue
            if len(ts) != len(values):
                problems.append(
                    f"series {name!r} ts/value length mismatch "
                    f"({len(ts)} vs {len(values)})"
                )
            if any(b < a for a, b in zip(ts, ts[1:])):
                problems.append(f"series {name!r} timestamps not sorted")
    return problems


# -- global install (mirrors repro.trace) ----------------------------------


def install(
    telemetry: Optional[Telemetry] = None,
    sampler: Optional[GaugeSampler] = None,
    profiler: Optional[EngineProfiler] = None,
) -> Telemetry:
    """Install ``telemetry`` (default: a fresh one) globally.

    ``sampler``/``profiler`` attach to the telemetry object and are
    published to the runtime globals the engine dispatch loop reads.
    If a :class:`MetricsRegistry` is installed, the telemetry snapshot
    self-registers under the ``telemetry`` namespace.
    """
    telemetry = telemetry if telemetry is not None else Telemetry()
    if sampler is not None:
        telemetry.sampler = sampler
    if profiler is not None:
        telemetry.profiler = profiler
    _runtime.TELEMETRY = telemetry
    _runtime.SAMPLER = telemetry.sampler
    _runtime.PROFILER = telemetry.profiler
    metrics = _runtime.METRICS
    if metrics is not None:
        metrics.register(METRICS_NAMESPACE, telemetry)
    return telemetry


def uninstall() -> None:
    """Disable telemetry globally (instrumentation reverts to no-ops)."""
    metrics = _runtime.METRICS
    if metrics is not None and _runtime.TELEMETRY is not None:
        metrics.unregister(METRICS_NAMESPACE)
    _runtime.TELEMETRY = None
    _runtime.SAMPLER = None
    _runtime.PROFILER = None


def current() -> Optional[Telemetry]:
    return _runtime.TELEMETRY


class session:
    """Context manager: install on enter, uninstall on exit."""

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        sampler: Optional[GaugeSampler] = None,
        profiler: Optional[EngineProfiler] = None,
    ):
        self._telemetry = telemetry
        self._sampler = sampler
        self._profiler = profiler

    def __enter__(self) -> Telemetry:
        return install(self._telemetry, self._sampler, self._profiler)

    def __exit__(self, *exc) -> None:
        uninstall()
