"""CLI: ``python -m repro.telemetry validate DUMP.json``."""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry import validate_payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect repro-telemetry dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser(
        "validate", help="schema-check a telemetry dump"
    )
    validate.add_argument("path", help="telemetry JSON dump")
    args = parser.parse_args(argv)

    with open(args.path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    problems = validate_payload(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    n_hist = len(doc.get("histograms", {}))
    n_series = len(doc.get("series", {}))
    print(f"OK: {n_hist} histograms, {n_series} series")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
