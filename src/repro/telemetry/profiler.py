"""Wall-clock self-profiling of the discrete-event engine.

The ROADMAP's fleet-scale item needs to know where the engine spends
*wall* time per simulated event before anyone optimizes it.
:class:`EngineProfiler` aggregates, per callback **site**, the number of
events dispatched, the heap pushes they caused, and the wall-ns spent
inside the callback.

A site is the action's ``__qualname__`` plus, for process resumes, the
process name with digit runs collapsed to ``#`` — so ``sim:rank0`` …
``sim:rank47`` fold into one ``Process._resume_action[sim:rank#]`` row
instead of one row per rank.

Wall-clock numbers are inherently nondeterministic; the profiler lives
strictly outside the sim clock and never feeds back into it.  When no
profiler is installed the engine runs its original dispatch loop — the
disabled path is the unmodified code, so the overhead contract (≤ 2 %)
holds by construction.
"""

from __future__ import annotations

import re

_DIGITS = re.compile(r"\d+")


def site_name(action) -> str:
    """Stable aggregation key for a heap action."""
    qualname = getattr(action, "__qualname__", None)
    if qualname is None:
        qualname = type(action).__name__
    owner = getattr(action, "__self__", None)
    name = getattr(owner, "name", None)
    if isinstance(name, str):
        return f"{qualname}[{_DIGITS.sub('#', name)}]"
    return qualname


class EngineProfiler:
    """Per-site (events, heap ops, wall-ns) aggregation."""

    def __init__(self) -> None:
        #: site -> [events dispatched, heap pushes caused, wall ns]
        self.sites: dict[str, list] = {}
        self.events = 0
        self.heap_pushes = 0
        self.wall_ns = 0

    def record(self, site: str, pushes: int, ns: int) -> None:
        """Fold one dispatched event into its site row."""
        row = self.sites.get(site)
        if row is None:
            row = self.sites[site] = [0, 0, 0]
        row[0] += 1
        row[1] += pushes
        row[2] += ns
        self.events += 1
        self.heap_pushes += pushes
        self.wall_ns += ns

    # -- reporting --------------------------------------------------------

    def snapshot(self) -> dict:
        """Serializable per-site rows sorted by wall time descending."""
        rows = [
            {
                "site": site,
                "events": row[0],
                "heap_pushes": row[1],
                "wall_ns": row[2],
                "ns_per_event": row[2] // row[0] if row[0] else 0,
            }
            for site, row in self.sites.items()
        ]
        rows.sort(key=lambda r: (-r["wall_ns"], r["site"]))
        return {
            "events": self.events,
            "heap_pushes": self.heap_pushes,
            "wall_ns": self.wall_ns,
            "sites": rows,
        }

    def table(self, limit: int = 0) -> str:
        """The hot-path table, widest column first."""
        snap = self.snapshot()
        rows = snap["sites"][:limit] if limit else snap["sites"]
        lines = [
            f"{'site':<48} {'events':>10} {'heap ops':>10} "
            f"{'wall ms':>10} {'ns/event':>9}"
        ]
        for row in rows:
            lines.append(
                f"{row['site']:<48} {row['events']:>10} "
                f"{row['heap_pushes']:>10} {row['wall_ns'] / 1e6:>10.3f} "
                f"{row['ns_per_event']:>9}"
            )
        lines.append(
            f"{'TOTAL':<48} {snap['events']:>10} {snap['heap_pushes']:>10} "
            f"{snap['wall_ns'] / 1e6:>10.3f} "
            f"{snap['wall_ns'] // snap['events'] if snap['events'] else 0:>9}"
        )
        return "\n".join(lines)

    def clear(self) -> None:
        self.sites.clear()
        self.events = 0
        self.heap_pushes = 0
        self.wall_ns = 0
