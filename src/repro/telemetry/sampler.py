"""Sim-clock time-series sampling of registered gauges.

The PR 3 tracer records gauges only at the instants instrumented code
happens to emit them; distribution-over-time questions ("what does
compaction debt look like as the run progresses?") need a *regular*
grid.  :class:`GaugeSampler` holds named zero-argument callables (pure
reads of live simulator state) and samples them all every ``interval``
simulated seconds, keeping the last ``retention`` points per gauge in a
ring buffer.

Sampling is driven by the engine's dispatch loop — **not** by heap
events.  A heap-scheduled sampler process would consume sequence
numbers (perturbing event order vs. an unsampled run) and keep
``Engine.run()`` from ever draining the heap.  Instead the engine
checks ``now >= sampler.next_due`` after each dispatched action and
calls :meth:`sample`; the sim clock never advances and no RNG is
touched, so a sampled run stays bit-identical to an unsampled one.
Samples land on the grid point *at or before* the triggering event —
the grid is aligned (``next_due`` is always a multiple of ``interval``)
so reruns sample at identical times.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

from repro.trace import runtime as _trace

#: default sampling interval, simulated seconds
DEFAULT_INTERVAL = 0.01

#: default ring-buffer retention, points per gauge
DEFAULT_RETENTION = 4096


class GaugeSampler:
    """Ring-buffered time series over registered gauge callables."""

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        retention: int = DEFAULT_RETENTION,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        if retention <= 0:
            raise ValueError(f"retention must be positive: {retention}")
        self.interval = interval
        self.retention = retention
        self._gauges: dict[str, Callable[[], float]] = {}
        self._series: dict[str, deque] = {}
        self.samples_taken = 0
        self.next_due = 0.0
        self._engine = None

    # -- registry ---------------------------------------------------------

    def register(self, name: str, read: Callable[[], float]) -> None:
        """Register gauge ``name`` backed by zero-arg callable ``read``.

        ``read`` must be a pure observation — it runs on the engine loop
        thread between events and must not block, schedule, or mutate
        simulator state.  Re-registering a name replaces its reader but
        keeps the accumulated series (a component reconstructed mid-run
        continues its line).
        """
        self._gauges[name] = read
        if name not in self._series:
            self._series[name] = deque(maxlen=self.retention)

    def unregister(self, name: str) -> None:
        """Stop sampling ``name``; its recorded series is retained."""
        self._gauges.pop(name, None)

    def gauges(self) -> list[str]:
        return sorted(self._gauges)

    # -- sampling (called from the engine dispatch loop) -------------------

    def bind(self, engine) -> None:
        """Reset the grid for a new engine (each figure point builds a
        fresh one, restarting the sim clock at zero).

        Rebinding rolls the series window over to the new run: retained
        points from the previous engine would interleave out of order
        with the restarted clock, so they are dropped.  Histograms (and
        ``samples_taken``) keep accumulating across the whole sweep;
        the exported series describe the most recent engine run.
        """
        if engine is not self._engine:
            if self._engine is not None:
                for series in self._series.values():
                    series.clear()
            self._engine = engine
            self.next_due = 0.0

    def sample(self, now: float) -> None:
        """Record one grid point; advances ``next_due`` past ``now``."""
        # The grid point this sample represents: the last multiple of
        # `interval` at or before `now` (events are sparse, so `now` may
        # have jumped several grid points past `next_due`).
        ts = math.floor(now / self.interval) * self.interval
        tracer = _trace.TRACER
        for name in sorted(self._gauges):
            try:
                value = self._gauges[name]()
            except Exception:
                continue  # a torn-down component mid-close; skip the point
            self._series[name].append((ts, value))
            if tracer is not None:
                tracer.gauge("telemetry", name, value, ts=ts)
        self.samples_taken += 1
        self.next_due = ts + self.interval

    # -- export -----------------------------------------------------------

    def series(self, name: str) -> list:
        """The retained (ts, value) points for ``name`` (oldest first)."""
        return list(self._series.get(name, ()))

    def to_dict(self) -> dict:
        """Columnar form: per-gauge parallel ``ts``/``value`` arrays."""
        out = {}
        for name in sorted(self._series):
            points = self._series[name]
            out[name] = {
                "ts": [p[0] for p in points],
                "value": [p[1] for p in points],
            }
        return out

    def clear(self) -> None:
        for series in self._series.values():
            series.clear()
        self.samples_taken = 0
        self.next_due = 0.0
        self._engine = None
