"""An ADIOS2 BP5-like engine over the simulated PFS, with plugins.

Models the behaviour that matters for the paper's Figures 6–8:

- **deferred puts** marshaled into per-rank buffer chunks (the paper sets
  ``BufferChunkSize = 32MB``);
- **N-to-N subfiles**: each writer streams its buffer into its own
  ``<name>.bp/data.<rank>`` file — large sequential writes, the property
  that lets ADIOS2 beat the IOR baseline by 10.7×;
- **marshaling cost**: BP5 serializes strongly-typed variables into its
  internal format.  This is the paper's own explanation for the
  LSMIO-vs-ADIOS2 gap ("additional layers of abstraction … strong typing
  … compared to the byte-array representation used by LSMIO", §4.3), and
  it is modeled as simulated CPU time per marshaled byte
  (``marshal_bandwidth``, calibrated in EXPERIMENTS.md);
- **metadata aggregation at close**: writer metadata is gathered to rank
  0, which writes ``md.0``/``md.idx``;
- the **plugin mechanism** (§3.1.7): a named engine factory registry; an
  application switches engines by changing the configured name only —
  LSMIO registers its engine under ``"lsmio"``.

The reader serves ``get`` from the run's metadata catalog with large
sequential subfile reads (why ADIOS2 tops Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro import sim
from repro.errors import InvalidArgumentError, NotFoundError
from repro.io import Priority, io_priority
from repro.pfs.client import LustreClient
from repro.util.humanize import parse_size

Payload = Union[bytes, int]

_VAR_METADATA_BYTES = 256  # per-variable record in the step metadata

# ---------------------------------------------------------------------------
# Plugin registry (the ADIOS2 "Plugin" extensibility mechanism)
# ---------------------------------------------------------------------------

_PLUGINS: dict[str, Callable] = {}


def register_plugin(name: str, factory: Callable) -> None:
    """Register an engine factory under ``name``.

    ``factory(path, mode, comm, client, params)`` must return an object
    with the engine interface (``put``, ``perform_puts``, ``end_step``,
    ``get``, ``close``).
    """
    key = name.lower()
    if key in _PLUGINS:
        raise InvalidArgumentError(f"plugin {name!r} already registered")
    _PLUGINS[key] = factory


def registered_plugins() -> list[str]:
    return sorted(_PLUGINS)


def _plugin_factory(name: str) -> Callable:
    try:
        return _PLUGINS[name.lower()]
    except KeyError as exc:
        raise InvalidArgumentError(f"no plugin named {name!r}") from exc


# ---------------------------------------------------------------------------
# Configuration (the XML file's <parameter> block, §3.1.7)
# ---------------------------------------------------------------------------


@dataclass
class Adios2Params:
    """Engine parameters (ADIOS2 IO parameters / XML configuration)."""

    engine: str = "BP5"
    buffer_chunk_size: int | str = "32M"  # the paper's BufferChunkSize
    #: effective serialization rate of the BP5 marshaling layer
    marshal_bandwidth: float | str = "30M"
    #: striping for subfiles (None → file-system default)
    stripe_count: Optional[int] = None
    stripe_size: Optional[int | str] = None
    async_write: bool = True
    #: extra engine-specific settings passed to plugins
    plugin_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.buffer_chunk_size = parse_size(self.buffer_chunk_size)
        self.marshal_bandwidth = float(parse_size(self.marshal_bandwidth))
        if self.buffer_chunk_size <= 0 or self.marshal_bandwidth <= 0:
            raise InvalidArgumentError("sizes/rates must be positive")


class Adios2Io:
    """The ``adios2.IO`` analogue: named configuration + ``open``."""

    def __init__(self, name: str, params: Optional[Adios2Params] = None):
        self.name = name
        self.params = params or Adios2Params()

    def open(self, path: str, mode: str, comm, client: LustreClient):
        """Open an engine; engine choice comes from configuration only."""
        engine = self.params.engine.lower()
        if engine == "bp5":
            if mode == "w":
                return Bp5Writer(path, comm, client, self.params)
            if mode == "r":
                return Bp5Reader(path, comm, client, self.params)
            raise InvalidArgumentError(f"bad mode {mode!r}")
        # Anything else resolves through the plugin registry — the
        # application code does not change (§3.1.7).
        factory = _plugin_factory(engine)
        return factory(path, mode, comm, client, self.params)


# ---------------------------------------------------------------------------
# BP5 catalog (logical metadata shared by writers/readers of one run)
# ---------------------------------------------------------------------------


def _catalog(client: LustreClient, path: str) -> dict:
    state = client.cluster.app_state.setdefault("bp5", {})
    return state.setdefault(path, {})


def _var_key(step: int, writer_rank: int, name: str) -> tuple:
    return (step, writer_rank, name)


# ---------------------------------------------------------------------------
# Writer
# ---------------------------------------------------------------------------


class Bp5Writer:
    """Per-rank BP5 write engine."""

    def __init__(self, path: str, comm, client: LustreClient, params: Adios2Params):
        self.path = path
        self.comm = comm
        self.client = client
        self.params = params
        self._deferred: list[tuple[str, Payload]] = []
        self._buffered = 0          # marshaled bytes not yet drained
        self._subfile_offset = 0
        self._step = 0
        self._metadata_bytes = 0
        self._closed = False
        self._catalog = _catalog(client, path)
        # data.<rank> subfile under the .bp directory
        self.subfile = client.create(
            f"{path}/data.{comm.rank}",
            stripe_count=params.stripe_count,
            stripe_size=params.stripe_size,
        )

    def put(self, name: str, payload: Payload, deferred: bool = True) -> None:
        """Queue (or immediately marshal) one variable write."""
        self._check_open()
        self._deferred.append((name, payload))
        if not deferred:
            self.perform_puts()

    def perform_puts(self) -> None:
        """Marshal deferred puts into buffer chunks, draining full chunks."""
        self._check_open()
        for name, payload in self._deferred:
            nbytes = (
                len(payload)
                if isinstance(payload, (bytes, bytearray, memoryview))
                else int(payload)
            )
            # BP5 serialization: strongly-typed marshal into the internal
            # buffer format (the §4.3 overhead).
            sim.sleep(nbytes / self.params.marshal_bandwidth)
            self._catalog[_var_key(self._step, self.comm.rank, name)] = (
                self.subfile.path,
                self._subfile_offset + self._buffered,
                nbytes,
                payload if isinstance(payload, (bytes, bytearray)) else None,
            )
            self._buffered += nbytes
            self._metadata_bytes += _VAR_METADATA_BYTES
            while self._buffered >= self.params.buffer_chunk_size:
                self._drain(self.params.buffer_chunk_size)
        self._deferred.clear()

    def _drain(self, nbytes: int) -> None:
        """Stream one buffer chunk to the subfile (large sequential write)."""
        self.client.write(self.subfile, self._subfile_offset, nbytes)
        self._subfile_offset += nbytes
        self._buffered -= nbytes
        if not self.params.async_write:
            self.client.fsync(self.subfile)

    def end_step(self) -> None:
        """Close a step: drain data and account step-local metadata."""
        self.perform_puts()
        if self._buffered:
            self._drain(self._buffered)
        self._step += 1

    def close(self) -> None:
        """PerformPuts + drain + metadata aggregation at rank 0 (§A.1.7)."""
        if self._closed:
            return
        self.perform_puts()
        if self._buffered:
            self._drain(self._buffered)
        self.client.fsync(self.subfile)
        # Metadata aggregation: every writer's index records gather to
        # rank 0, which writes md.0 and md.idx.
        all_md = self.comm.gather(self._metadata_bytes, root=0)
        if self.comm.rank == 0:
            with io_priority(Priority.METADATA):
                md = self.client.create(f"{self.path}/md.0")
                self.client.write(md, 0, max(sum(all_md), 64))
                idx = self.client.create(f"{self.path}/md.idx")
                self.client.write(idx, 0, max(64 * len(all_md), 64))
                self.client.fsync(md)
        self.client.close(self.subfile)
        self.comm.barrier()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidArgumentError("engine is closed")


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


class Bp5Reader:
    """Per-rank BP5 read engine: metadata-directed subfile reads."""

    def __init__(self, path: str, comm, client: LustreClient, params: Adios2Params):
        self.path = path
        self.comm = comm
        self.client = client
        self.params = params
        self._catalog = _catalog(client, path)
        self._closed = False
        self._subfiles: dict[str, object] = {}
        # Readahead window per subfile: BP5 readers stream variables in
        # file order, so the engine prefetches ``readahead`` bytes per
        # data RPC (Lustre client readahead does the same).
        self._windows: dict[str, tuple[int, int]] = {}
        self.readahead = parse_size(
            params.plugin_params.get("readahead", "4M")
        )
        # Opening a BP5 run reads the aggregated metadata once.
        try:
            with io_priority(Priority.METADATA):
                md = client.open(f"{path}/md.idx")
                client.read(md, 0, md.size)
                md0 = client.open(f"{path}/md.0")
                client.read(md0, 0, md0.size)
        except NotFoundError as exc:
            raise NotFoundError(f"{path} has no BP5 metadata") from exc

    def get(self, name: str, writer_rank: Optional[int] = None, step: int = 0) -> bytes:
        """Read one variable (defaults to this rank's writer twin)."""
        self._check_open()
        writer = writer_rank if writer_rank is not None else self.comm.rank
        try:
            subfile_path, offset, nbytes, payload = self._catalog[
                _var_key(step, writer, name)
            ]
        except KeyError as exc:
            raise NotFoundError(
                f"variable {name!r} (writer {writer}, step {step}) not found"
            ) from exc
        subfile = self._subfiles.get(subfile_path)
        if subfile is None:
            subfile = self.client.open(subfile_path)
            self._subfiles[subfile_path] = subfile
        window = self._windows.get(subfile_path)
        end = offset + nbytes
        if window is None or offset < window[0] or end > window[1]:
            fetch = max(nbytes, self.readahead)
            self.client.read(subfile, offset, fetch)
            self._windows[subfile_path] = (offset, offset + fetch)
        if payload is not None:
            return bytes(payload)
        return subfile.load(offset, nbytes)

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise InvalidArgumentError("engine is closed")
