"""Operation-faithful models of the paper's comparator I/O libraries.

Each module issues, against the simulated Lustre client, the same request
pattern the real library would issue against a real Lustre mount:

- :mod:`repro.iolibs.posixio` — the IOR baseline path: per-rank strided
  pwrites/preads into a shared (or per-process) file;
- :mod:`repro.iolibs.collective` — ROMIO-style two-phase collective I/O
  (aggregators, file domains, exchange rounds);
- :mod:`repro.iolibs.hdf5` — HDF5's chunked-dataset write path: superblock
  and object headers at the file head, per-chunk B-tree index updates, and
  eof-allocation — the small-shared-metadata traffic that floors Figure 6;
- :mod:`repro.iolibs.adios2` — an ADIOS2 BP5-like engine: deferred puts
  into 32 MB buffer chunks, N-to-N subfiles, aggregated metadata at close,
  plus the **plugin registry** LSMIO's engine registers into (§3.1.7).
"""

from repro.iolibs.posixio import PosixFile
from repro.iolibs.collective import two_phase_read, two_phase_write
from repro.iolibs.hdf5 import Hdf5File
from repro.iolibs.adios2 import (
    Adios2Params,
    Adios2Io,
    register_plugin,
    registered_plugins,
)

__all__ = [
    "Adios2Io",
    "Adios2Params",
    "Hdf5File",
    "PosixFile",
    "register_plugin",
    "registered_plugins",
    "two_phase_read",
    "two_phase_write",
]
