"""An operation-faithful model of HDF5's parallel write path.

What makes HDF5 slow on a shared Lustre file (Figure 6) is not its data
payload — it is the *metadata choreography* around every chunk:

- the file starts with a **superblock** and object headers at offset 0;
- a chunked dataset indexes its chunks in a **B-tree** whose nodes also
  live in the metadata region at the file head;
- chunk space is **allocated at end-of-file**, which in parallel mode is
  a serialized operation;
- every chunk write therefore bundles: an eof allocation (small write to
  the head region), the data write, and a B-tree insertion (read-modify-
  write of index nodes in the head region).

All of those head-region updates land on the file's *first stripe* — one
OST object shared by every rank — so each one pays the extent-lock
ping-pong, and aggregate throughput collapses to roughly
``chunk_size / lock_round_trip`` regardless of node count.  Reads pay the
B-tree traversal (several small head-region reads) before each chunk.

The model issues exactly that request pattern through the normal
:class:`LustreClient`; no magic constants are injected here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import InvalidArgumentError, NotFoundError
from repro.io import Priority, io_priority
from repro.pfs.client import LustreClient
from repro.pfs.lustre import LustreFile

Payload = Union[bytes, int]

SUPERBLOCK_SIZE = 2048
OBJECT_HEADER_SIZE = 512
BTREE_NODE_SIZE = 4096
#: number of chunk entries per B-tree leaf node
BTREE_FANOUT = 64
#: metadata region reserved at the head of the file
METADATA_REGION = 1 << 20


@dataclass
class _Dataset:
    name: str
    header_offset: int
    chunk_size: int
    #: chunk index → allocated file offset
    chunk_index: dict
    btree_nodes: int = 1


@dataclass
class _H5State:
    """The file's logical structure — shared by every rank's handle,
    exactly as the on-disk structure would be."""

    datasets: dict
    metadata_cursor: int = SUPERBLOCK_SIZE
    eof: int = METADATA_REGION


class Hdf5File:
    """One HDF5 file on the simulated PFS (create/open + chunk I/O)."""

    def __init__(self, client: LustreClient, file: LustreFile, writable: bool,
                 state: _H5State):
        self.client = client
        self.file = file
        self.writable = writable
        self._state = state
        #: this handle's metadata cache: B-tree nodes already read are not
        #: re-fetched on insert (HDF5 caches metadata in memory), and the
        #: eviction/flush policy pushes a dirtied node out roughly every
        #: fourth insert.  Collective-metadata mode (set by the collective
        #: driver) must keep every rank's view coherent, so it writes
        #: through on every modification.
        self._md_cache: set[int] = set()
        self._collective_metadata = False

    @property
    def _datasets(self) -> dict:
        return self._state.datasets

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        client: LustreClient,
        path: str,
        stripe_count: Optional[int] = None,
        stripe_size: Optional[int | str] = None,
    ) -> "Hdf5File":
        """H5Fcreate: MDS create + superblock write at offset 0."""
        file = client.create(path, stripe_count, stripe_size)
        state = _H5State(datasets={})
        file._h5_state = state  # the on-disk structure  # noqa: SLF001
        self = cls(client, file, writable=True, state=state)
        with io_priority(Priority.METADATA):
            client.write(file, 0, SUPERBLOCK_SIZE)
        return self

    @classmethod
    def open(cls, client: LustreClient, path: str, writable: bool = False) -> "Hdf5File":
        """H5Fopen: MDS open + superblock read."""
        file = client.open(path)
        state = getattr(file, "_h5_state", None)
        if state is None:
            raise NotFoundError(f"{path} is not an HDF5 file in this run")
        with io_priority(Priority.METADATA):
            client.read(file, 0, SUPERBLOCK_SIZE)
        return cls(client, file, writable=writable, state=state)

    def create_dataset(self, name: str, chunk_size: int | str) -> None:
        """H5Dcreate: object header write in the head region."""
        from repro.util.humanize import parse_size

        chunk_size = parse_size(chunk_size)
        if chunk_size <= 0:
            raise InvalidArgumentError("chunk_size must be positive")
        if name in self._datasets:
            raise InvalidArgumentError(f"dataset {name!r} exists")
        self._require_writable()
        header_offset = self._allocate_metadata(OBJECT_HEADER_SIZE)
        with io_priority(Priority.METADATA):
            self.client.write(self.file, header_offset, OBJECT_HEADER_SIZE)
        self._datasets[name] = _Dataset(
            name=name,
            header_offset=header_offset,
            chunk_size=chunk_size,
            chunk_index={},
        )

    # -- chunk I/O -----------------------------------------------------------

    def write_chunk(self, dataset: str, chunk: int, payload: Payload) -> None:
        """H5Dwrite of one chunk (independent mode).

        Sequence per chunk: eof allocation (head-region small write),
        data write at the allocated offset, B-tree index insertion
        (head-region read-modify-write).
        """
        ds = self._dataset(dataset)
        self._require_writable()
        offset = ds.chunk_index.get(chunk)
        if offset is None:
            # EOF allocation is tracked in the handle's cached superblock;
            # the dirtied metadata reaches disk with the B-tree insert.
            offset = self._allocate_eof(ds.chunk_size)
            ds.chunk_index[chunk] = offset
        self.client.write(self.file, offset, payload)
        self._btree_insert(ds, chunk)

    def read_chunk(self, dataset: str, chunk: int) -> bytes:
        """H5Dread of one chunk: B-tree traversal, then the data read."""
        ds = self._dataset(dataset)
        self._btree_traverse(ds, chunk)
        offset = ds.chunk_index.get(chunk)
        if offset is None:
            raise NotFoundError(f"chunk {chunk} of {dataset!r} never written")
        return self.client.read(self.file, offset, ds.chunk_size)

    def flush(self) -> None:
        """H5Fflush: metadata cache writeback (header rewrites) + fsync."""
        self._require_writable()
        with io_priority(Priority.METADATA):
            self.client.write(self.file, 0, SUPERBLOCK_SIZE)
            for ds in self._datasets.values():
                self.client.write(
                    self.file, ds.header_offset, OBJECT_HEADER_SIZE
                )
        self.client.fsync(self.file)

    def close(self) -> None:
        """H5Fclose: flush (writers) + MDS close."""
        if self.writable:
            self.flush()
        self.client.close(self.file)

    # -- internals ---------------------------------------------------------

    def _dataset(self, name: str) -> _Dataset:
        try:
            return self._datasets[name]
        except KeyError as exc:
            raise NotFoundError(f"no dataset {name!r}") from exc

    def _require_writable(self) -> None:
        if not self.writable:
            raise InvalidArgumentError("file opened read-only")

    def _allocate_metadata(self, nbytes: int) -> int:
        offset = self._state.metadata_cursor
        self._state.metadata_cursor += nbytes
        if self._state.metadata_cursor > METADATA_REGION:
            raise InvalidArgumentError("metadata region exhausted")
        return offset

    def _allocate_eof(self, nbytes: int) -> int:
        offset = self._state.eof
        self._state.eof += nbytes
        return offset

    def _btree_offset(self, ds: _Dataset, node: int) -> int:
        # Index nodes interleave in the head region past the dataset header.
        return (
            ds.header_offset
            + OBJECT_HEADER_SIZE
            + (node % 8) * BTREE_NODE_SIZE
        ) % METADATA_REGION

    def _btree_insert(self, ds: _Dataset, chunk: int) -> None:
        with io_priority(Priority.METADATA):
            self._btree_insert_inner(ds, chunk)

    def _btree_insert_inner(self, ds: _Dataset, chunk: int) -> None:
        node = chunk // BTREE_FANOUT
        offset = self._btree_offset(ds, node)
        # Modify-write of the leaf (read only on a cold cache).  The
        # metadata cache absorbs roughly every other dirtying before the
        # eviction/flush policy pushes the node out (HDF5's H5AC default
        # behaviour under sustained insertion).
        if offset not in self._md_cache:
            self.client.read(self.file, offset, BTREE_NODE_SIZE)
            self._md_cache.add(offset)
        self._md_dirty = getattr(self, "_md_dirty", 0) + 1
        if not self._collective_metadata and self._md_dirty % 4 != 1:
            return
        self.client.write(self.file, offset, BTREE_NODE_SIZE)
        if chunk % BTREE_FANOUT == 0:
            parent = self._btree_offset(ds, node + 1)
            self.client.write(self.file, parent, BTREE_NODE_SIZE)
            ds.btree_nodes += 1

    def _btree_traverse(self, ds: _Dataset, chunk: int) -> None:
        # Root + internal + leaf: three small head-region reads.  Reader
        # handles traverse cold: under a parallel read the index nodes
        # compete with every rank's data reads for the head-region
        # objects, so the metadata cache provides no locality there.
        node = chunk // BTREE_FANOUT
        with io_priority(Priority.METADATA):
            self.client.read(self.file, SUPERBLOCK_SIZE, BTREE_NODE_SIZE)
            self.client.read(
                self.file, self._btree_offset(ds, node + 1), BTREE_NODE_SIZE
            )
            self.client.read(
                self.file, self._btree_offset(ds, node), BTREE_NODE_SIZE
            )
