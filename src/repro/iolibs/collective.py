"""Two-phase collective I/O (ROMIO's generalized collective buffering).

The algorithm behind ``MPI_File_write_all`` [Thakur et al. 1999, paper
ref 41], with the Lustre-aware file-domain assignment that production
ROMIO drivers and T3PIO [paper ref 24] apply:

1. ranks allgather their access ranges;
2. the file is partitioned into **stripe-aligned file domains**:
   aggregator ``j`` (of ``cb_nodes``, default = the file's stripe count)
   owns every stripe with ``stripe_index % cb_nodes == j``, so each
   aggregator's writes land on a fixed OST object *in increasing offset
   order* — one large sequential RPC per round instead of N strided ones;
3. data moves to its owning aggregator (the exchange phase, an alltoall),
   then each aggregator submits its pieces as a single vectored write.

Reads run the same structure backwards.  Collective I/O converts N
strided writers into ``cb_nodes`` sequential ones — the 12.1× improvement
of Figure 9 — at the cost of exchange traffic and round barriers, which
is also why it can hurt workloads whose pattern was already friendly
(reads in Figure 10) or whose metadata remains serialized (HDF5).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.errors import InvalidArgumentError
from repro.io import Priority, io_priority
from repro.pfs.client import LustreClient
from repro.pfs.lustre import LustreFile
from repro.util.humanize import parse_size

Payload = Union[bytes, int]
Segment = tuple[int, Payload]  # (file offset, data-or-length)


def _payload_length(payload: Payload) -> int:
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    return int(payload)


def _slice_payload(payload: Payload, start: int, length: int) -> Payload:
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return bytes(payload[start : start + length])
    return length


def _split_by_owner(
    offset: int,
    payload: Payload,
    stripe_size: int,
    cb_nodes: int,
) -> list[tuple[int, int, Payload]]:
    """Split one segment at stripe boundaries → (owner, offset, piece)."""
    out = []
    length = _payload_length(payload)
    position = offset
    remaining = length
    while remaining > 0:
        stripe = position // stripe_size
        within = position % stripe_size
        take = min(remaining, stripe_size - within)
        out.append(
            (
                stripe % cb_nodes,
                position,
                _slice_payload(payload, position - offset, take),
            )
        )
        position += take
        remaining -= take
    return out


def _resolve_cb_nodes(cb_nodes: Optional[int], file: LustreFile, comm) -> int:
    """Default: one aggregator per stripe (T3PIO's tuned configuration)."""
    if cb_nodes is None:
        cb_nodes = file.layout.stripe_count
    return max(1, min(cb_nodes, comm.size))


def two_phase_write(
    comm,
    client: LustreClient,
    file: LustreFile,
    segments: Sequence[Segment],
    cb_nodes: Optional[int] = None,
    cb_buffer_size: int | str = "16M",
) -> None:
    """Collectively write every rank's ``segments`` (collective call).

    ``cb_buffer_size`` bounds how much one aggregator buffers per round;
    rounds are processed lowest-stripe-first so each aggregator's object
    stream stays sequential across calls.
    """
    cb_buffer_size = parse_size(cb_buffer_size)
    if cb_buffer_size <= 0:
        raise InvalidArgumentError("cb_buffer_size must be positive")
    cb_nodes = _resolve_cb_nodes(cb_nodes, file, comm)
    stripe_size = file.layout.stripe_size

    my_total = sum(_payload_length(p) for _, p in segments)
    totals = comm.allgather(my_total)
    grand_total = sum(totals)
    if grand_total == 0:
        comm.barrier()
        return
    per_agg = grand_total / cb_nodes
    rounds = max(1, int(-(-per_agg // cb_buffer_size)))

    # Distribute each segment's stripes to their owning aggregator, in
    # offset order, split across rounds by the aggregator buffer budget.
    owned: list[list[tuple[int, Payload]]] = [[] for _ in range(cb_nodes)]
    for offset, payload in segments:
        for owner, piece_offset, piece in _split_by_owner(
            offset, payload, stripe_size, cb_nodes
        ):
            owned[owner].append((piece_offset, piece))
    for pieces in owned:
        pieces.sort(key=lambda item: item[0])

    is_aggregator = comm.rank < cb_nodes

    for round_index in range(rounds):
        outbound: list[list] = [[] for _ in range(comm.size)]
        for owner, pieces in enumerate(owned):
            lo = round_index * len(pieces) // rounds
            hi = (round_index + 1) * len(pieces) // rounds
            if hi > lo:
                outbound[owner].extend(pieces[lo:hi])
        inbound = comm.alltoall(outbound)

        if is_aggregator:
            batch = sorted(
                (piece for rank_pieces in inbound for piece in rank_pieces),
                key=lambda item: item[0],
            )
            if batch:
                # Write-behind: ROMIO does not fsync per call; durability
                # comes from the file close at the end of the benchmark.
                # Aggregated application data stays FOREGROUND class.
                with io_priority(Priority.FOREGROUND):
                    client.writev(file, batch)
        # ROMIO synchronizes exchange-buffer reuse between rounds.
        comm.barrier()


def two_phase_read(
    comm,
    client: LustreClient,
    file: LustreFile,
    segments: Sequence[tuple[int, int]],
    cb_nodes: Optional[int] = None,
    cb_buffer_size: int | str = "16M",
) -> list[bytes]:
    """Collectively read; returns this rank's data per segment.

    Aggregators read their stripe-aligned domains and redistribute; the
    requesting ranks pay the extra exchange hop — the overhead that
    degrades IOR's collective read in Figure 10.
    """
    cb_buffer_size = parse_size(cb_buffer_size)
    cb_nodes = _resolve_cb_nodes(cb_nodes, file, comm)
    stripe_size = file.layout.stripe_size

    my_ranges = list(segments)
    all_ranges = comm.allgather(my_ranges)
    results = [bytearray(length) for _, length in my_ranges]
    grand_total = sum(
        length for rank_ranges in all_ranges for _, length in rank_ranges
    )
    if grand_total == 0:
        comm.barrier()
        return [bytes(buf) for buf in results]

    # Each aggregator reads the stripes it owns out of every requested
    # range (vectored, ascending), then routes pieces to the requesters.
    is_aggregator = comm.rank < cb_nodes
    if is_aggregator:
        wanted: list[tuple[int, int, int]] = []  # (offset, length, requester)
        for requester, rank_ranges in enumerate(all_ranges):
            for offset, length in rank_ranges:
                for owner, piece_offset, piece_len in _split_by_owner(
                    offset, length, stripe_size, cb_nodes
                ):
                    if owner == comm.rank:
                        wanted.append((piece_offset, piece_len, requester))
        wanted.sort(key=lambda item: item[0])
        outbound: list[list] = [[] for _ in range(comm.size)]
        for piece_offset, piece_len, requester in wanted:
            data = client.read(file, piece_offset, piece_len)
            if len(data) < piece_len:  # holes read as zeros
                data = data + b"\x00" * (piece_len - len(data))
            outbound[requester].append((piece_offset, data))
    else:
        outbound = [[] for _ in range(comm.size)]

    inbound = comm.alltoall(outbound)
    for rank_pieces in inbound:
        for piece_offset, piece in rank_pieces:
            for (seg_offset, seg_len), buf in zip(my_ranges, results):
                rel = piece_offset - seg_offset
                if 0 <= rel < seg_len:
                    end = min(rel + len(piece), seg_len)
                    buf[rel:end] = piece[: end - rel]
    comm.barrier()
    return [bytes(buf) for buf in results]
