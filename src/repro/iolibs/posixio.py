"""The IOR baseline: plain POSIX-style strided I/O on the parallel FS.

IOR's default backend opens one shared file (or one file per process with
``-F``) and each rank ``pwrite``s its ``transferSize`` blocks at
rank-strided offsets.  On Lustre this is exactly a striped
:meth:`LustreClient.write` per transfer, so the model here is a thin
wrapper — the interesting behaviour (stripe confinement, lock ping-pong,
head thrash) emerges in the PFS layer.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ClosedError
from repro.io import Priority, io_priority
from repro.pfs.client import LustreClient
from repro.pfs.lustre import LustreFile

Payload = Union[bytes, int]


class PosixFile:
    """A POSIX-flavoured handle: pwrite/pread + fsync + close."""

    def __init__(self, client: LustreClient, file: LustreFile):
        self.client = client
        self.file = file
        self._closed = False

    @classmethod
    def create(
        cls,
        client: LustreClient,
        path: str,
        stripe_count: Optional[int] = None,
        stripe_size: Optional[int | str] = None,
    ) -> "PosixFile":
        """O_CREAT|O_TRUNC open (an MDS create)."""
        return cls(client, client.create(path, stripe_count, stripe_size))

    @classmethod
    def open(cls, client: LustreClient, path: str) -> "PosixFile":
        """O_RDONLY / O_WRONLY open of an existing file."""
        return cls(client, client.open(path))

    def pwrite(self, offset: int, data: Payload) -> None:
        """Positioned write (bytes, or a length in data-less mode)."""
        self._check_open()
        # Application data: pin FOREGROUND class even when called from a
        # background context (e.g. a checkpoint engine's worker).
        with io_priority(Priority.FOREGROUND):
            self.client.write(self.file, offset, data)

    def pread(self, offset: int, nbytes: int) -> bytes:
        """Positioned read."""
        self._check_open()
        with io_priority(Priority.FOREGROUND):
            return self.client.read(self.file, offset, nbytes)

    def fsync(self) -> None:
        """Force write-behind data to the OSTs (IOR's ``-e``)."""
        self._check_open()
        self.client.fsync(self.file)

    def close(self) -> None:
        if self._closed:
            return
        self.client.close(self.file)
        self._closed = True

    @property
    def size(self) -> int:
        return self.file.size

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError(f"file {self.file.path} is closed")

    def __enter__(self) -> "PosixFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
