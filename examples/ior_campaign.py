#!/usr/bin/env python3
"""A miniature IOR campaign on the simulated Viking cluster.

Sweeps the paper's five APIs over a few node counts and prints the
Figure-5/6-style table — the fastest way to see the paper's headline
result take shape.  For the full figure sweeps use
``python -m repro.bench fig5`` etc.

    python examples/ior_campaign.py [--nodes 4 16 48]
"""

import argparse
import sys

from repro.ior import IorConfig, run_ior
from repro.ior.report import format_results_table
from repro.pfs.configs import viking


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, nargs="+", default=[4, 16, 48])
    parser.add_argument("--transfer", default="64K")
    parser.add_argument("--per-task", default="2M")
    args = parser.parse_args()

    from repro.util.humanize import parse_size

    transfer = parse_size(args.transfer)
    per_task = parse_size(args.per_task)
    cluster = viking(store_data=False, client_jitter=0.8e-3)

    series: dict[str, list[float]] = {}
    for api in ("posix", "hdf5", "adios2", "lsmio-plugin", "lsmio"):
        label = "ior" if api == "posix" else api
        series[label] = []
        for nodes in args.nodes:
            config = IorConfig(
                api=api,
                num_tasks=nodes,
                block_size=transfer,
                transfer_size=transfer,
                segment_count=max(1, per_task // transfer),
                stripe_count=4,
                stripe_size=transfer,
            )
            result = run_ior(config, cluster)
            series[label].append(result.max_write_bw)
            print(f"  {label:12s} N={nodes:3d}: "
                  f"{result.max_write_bw / (1 << 20):8.1f} MB/s",
                  file=sys.stderr)

    print()
    print(format_results_table(
        f"IOR campaign — write bandwidth, transfer {args.transfer}, "
        "stripe count 4 (simulated Viking)",
        args.nodes,
        series,
    ))
    last = -1
    print()
    print(f"LSMIO vs IOR baseline at {args.nodes[last]} nodes: "
          f"{series['lsmio'][last] / series['ior'][last]:.1f}x "
          "(paper: up to 23.1x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
