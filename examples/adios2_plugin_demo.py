#!/usr/bin/env python3
"""The ADIOS2 plugin (§3.1.7): switch engines with configuration only.

Runs the same 8-rank application twice on the simulated Viking cluster —
once on the BP5-style engine, once on the LSMIO plugin.  The application
function never mentions either engine: the choice is a parameter, exactly
the paper's XML-only switch.  Prints the simulated checkpoint time for
both engines.

    python examples/adios2_plugin_demo.py
"""

import sys

import numpy as np

from repro import sim
from repro.core.serialization import deserialize_value, serialize_value
from repro.iolibs.adios2 import Adios2Io, Adios2Params
from repro.mpi import run_world
from repro.pfs import LustreClient, LustreCluster
from repro.pfs.configs import viking

import repro.core.plugin  # noqa: F401 — registers the "lsmio" engine

RANKS = 8
FIELD_SHAPE = (64, 64, 16)  # per-rank block of the global domain


def application(comm, engine_name: str) -> dict:
    """An ADIOS2 application: writes fields, reads them back."""
    client = LustreClient(comm.world._cluster, comm.rank)
    io = Adios2Io("demo", Adios2Params(engine=engine_name,
                                       buffer_chunk_size="8M"))

    rng = np.random.default_rng(comm.rank)
    temperature = rng.standard_normal(FIELD_SHAPE)
    pressure = rng.standard_normal(FIELD_SHAPE)

    comm.barrier()
    t0 = sim.now()
    writer = io.open(f"{engine_name}-demo.bp", "w", comm, client)
    # Multi-dimensional variables are serialized "into a string" (§3.1.7).
    writer.put("temperature", serialize_value(temperature))
    writer.put("pressure", serialize_value(pressure))
    writer.perform_puts()
    writer.close()
    comm.barrier()
    write_time = sim.now() - t0

    reader = io.open(f"{engine_name}-demo.bp", "r", comm, client)
    restored = deserialize_value(reader.get("temperature"))
    reader.close()
    np.testing.assert_array_equal(restored, temperature)
    comm.barrier()
    return {"write_time": write_time}


def run_engine(engine_name: str) -> float:
    with sim.Engine() as engine:
        cluster = LustreCluster(engine, viking(client_jitter=0.8e-3))

        def setup(world):
            world._cluster = cluster

        results = run_world(
            RANKS, application, engine_name,
            engine=engine, world_setup=setup,
        )
    return max(r["write_time"] for r in results)


def main() -> int:
    nbytes = RANKS * 2 * int(np.prod(FIELD_SHAPE)) * 8
    print(f"{RANKS} ranks, {nbytes >> 20} MiB of multi-dim variables, "
          "simulated Viking cluster\n")
    times = {}
    for engine_name in ("BP5", "lsmio"):
        times[engine_name] = run_engine(engine_name)
        bandwidth = nbytes / times[engine_name] / (1 << 20)
        print(f"engine={engine_name:5s}: checkpoint in "
              f"{times[engine_name] * 1000:7.1f} ms simulated "
              f"({bandwidth:7.1f} MB/s)")
    speedup = times["BP5"] / times["lsmio"]
    print(f"\nLSMIO plugin vs BP5: {speedup:.2f}x "
          "(no application change — engine name only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
