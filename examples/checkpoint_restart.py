#!/usr/bin/env python3
"""Checkpoint/restart of a real computation through the LSMIO K/V API.

A 2-D heat-diffusion stencil (the workload class the paper's introduction
motivates) runs for N steps, checkpointing its full state every K steps
through :class:`repro.core.Checkpointer` — the library's crash-consistent
epoch protocol (CRC-verified blocks + commit marker).  Midway we simulate
a crash — the process state is discarded — and restart from the newest
*complete* epoch, verifying that the recomputed result matches an
uninterrupted run bit-for-bit.

    python examples/checkpoint_restart.py [directory]
"""

import sys
import tempfile

import numpy as np

from repro.core import Checkpointer, LsmioManager, LsmioOptions
from repro.errors import NotFoundError

GRID = 256
STEPS = 60
CHECKPOINT_EVERY = 20
ALPHA = 0.1


def step(field: np.ndarray) -> np.ndarray:
    """One explicit heat-equation update (5-point stencil)."""
    out = field.copy()
    out[1:-1, 1:-1] += ALPHA * (
        field[:-2, 1:-1]
        + field[2:, 1:-1]
        + field[1:-1, :-2]
        + field[1:-1, 2:]
        - 4 * field[1:-1, 1:-1]
    )
    return out


def initial_field() -> np.ndarray:
    field = np.zeros((GRID, GRID))
    field[GRID // 4 : GRID // 2, GRID // 4 : GRID // 2] = 100.0
    return field


def load_latest_checkpoint(ckpt: Checkpointer):
    try:
        epoch, state = ckpt.load_latest()  # every block CRC-verified
    except NotFoundError:
        return 0, initial_field()
    return epoch, state["field"]


def run(ckpt: Checkpointer, start_step: int, field: np.ndarray,
        crash_at: int | None) -> tuple[int, np.ndarray]:
    for step_no in range(start_step + 1, STEPS + 1):
        field = step(field)
        if step_no % CHECKPOINT_EVERY == 0:
            report = ckpt.save(step_no, {"field": field})
            print(f"  checkpointed step {step_no} ({report.summary()})")
        if crash_at is not None and step_no == crash_at:
            print(f"  !! simulated crash at step {step_no} "
                  "(in-memory state lost)")
            return step_no, field
    return STEPS, field


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    db = f"{root}/heat-ckpt-db"
    print(f"checkpoint store: {db}")

    # Reference: an uninterrupted run.
    reference = initial_field()
    for _ in range(STEPS):
        reference = step(reference)

    # Faulty run: crashes at step 50 (after the step-40 checkpoint).
    manager = LsmioManager(db, LsmioOptions())
    print("run 1 (will crash):")
    run(Checkpointer(manager), 0, initial_field(), crash_at=50)
    manager.close()  # the process dies; only committed epochs survive

    # Restart: recover from the newest complete epoch and finish.
    manager = LsmioManager(db, LsmioOptions())
    ckpt = Checkpointer(manager)
    start_step, field = load_latest_checkpoint(ckpt)
    print(f"run 2: restarting from checkpoint at step {start_step}")
    assert start_step == 40, "should resume from the step-40 checkpoint"
    assert ckpt.epochs() == [20, 40], "both epochs should be committed"
    _, final = run(ckpt, start_step, field, crash_at=None)
    manager.close()

    np.testing.assert_array_equal(final, reference)
    print(f"restart-completed field matches the uninterrupted run "
          f"(checksum {final.sum():.6f}) — checkpoint/restart works")
    return 0


if __name__ == "__main__":
    sys.exit(main())
