#!/usr/bin/env python3
"""The FStream API (Table 3): POSIX-style streams over the LSM store.

Writes a multi-file checkpoint the way a legacy application would — one
"file" per field plus a small header — through the C++-iostream-like
interface (open/write/seekp/flush/close), then reads it back.  The
static ``initialize``/``cleanup``/``write_barrier`` methods mirror the
paper's API exactly.

    python examples/fstream_stencil.py [directory]
"""

import struct
import sys
import tempfile

import numpy as np

from repro.core import LsmioFStream, LsmioOptions
from repro.core.fstream import fstream_open

GRID = 384
MAGIC = b"CKPT"


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    LsmioFStream.initialize(f"{root}/fstream-db", options=LsmioOptions())
    print(f"FStream store: {root}/fstream-db")
    try:
        rng = np.random.default_rng(7)
        pressure = rng.standard_normal((GRID, GRID))
        velocity = rng.standard_normal((2, GRID, GRID))

        # -- write phase: one stream per field, legacy-file style --------
        with fstream_open("ckpt/header.dat", "w") as header:
            # Reserve space, write the body, then seek back and patch the
            # header — the classic pattern seekp exists for.
            header.write(b"\x00" * 16)
            header.write(b"fields: pressure velocity\n")
            body_end = header.tellp()
            header.seekp(0)
            header.write(MAGIC + struct.pack("<iq", GRID, body_end))

        for name, array in (("pressure", pressure), ("velocity", velocity)):
            with fstream_open(f"ckpt/{name}.bin", "w") as fh:
                fh.write(struct.pack("<B", array.ndim))
                fh.write(struct.pack(f"<{array.ndim}q", *array.shape))
                fh.write(array.tobytes())
            print(f"  wrote ckpt/{name}.bin ({array.nbytes >> 10} KiB)")

        # All streams' data is flushed and durable past this barrier.
        LsmioFStream.write_barrier()

        # -- read phase ----------------------------------------------------
        with fstream_open("ckpt/header.dat", "r") as header:
            magic = header.read(4)
            grid, body_end = struct.unpack("<iq", header.read(12))
            assert magic == MAGIC and grid == GRID
            header.seekp(16)

        def load(name: str) -> np.ndarray:
            with fstream_open(f"ckpt/{name}.bin", "r") as fh:
                ndim = struct.unpack("<B", fh.read(1))[0]
                shape = struct.unpack(f"<{ndim}q", fh.read(8 * ndim))
                return np.frombuffer(fh.read(), dtype=np.float64).reshape(shape)

        np.testing.assert_array_equal(load("pressure"), pressure)
        np.testing.assert_array_equal(load("velocity"), velocity)
        print("read-back matches — the stream facade round-trips exactly")

        # Appending to an existing "file" (restart log style).
        for attempt in range(3):
            with fstream_open("ckpt/restart.log", "a") as log:
                log.write(f"restart attempt {attempt}\n".encode())
        with fstream_open("ckpt/restart.log", "r") as log:
            lines = log.read().decode().splitlines()
        assert len(lines) == 3
        print(f"append-mode log has {len(lines)} entries")
    finally:
        LsmioFStream.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
