#!/usr/bin/env python3
"""Embedding LSMIO in a "real application" (the paper's §5.1 next step).

A 16-rank SPMD Jacobi solver runs on the simulated Viking cluster and
periodically checkpoints its domain slice — once through a shared POSIX
file (the classic N-to-1 pattern) and once through LSMIO.  The solver
code is identical; only the checkpoint writer changes.  Prints the
simulated time each strategy spends inside checkpoints and the resulting
machine-efficiency numbers from Young's formula.

    python examples/spmd_application.py
"""

import sys

import numpy as np

from repro import sim
from repro.core import LsmioManager, LsmioOptions
from repro.mpi import run_world
from repro.pfs import LustreClient, LustreCluster, SimLustreEnv
from repro.pfs.configs import viking
from repro.util import machine_efficiency, young_interval

RANKS = 16
LOCAL_ROWS = 256
COLS = 512
STEPS = 12
CHECKPOINT_EVERY = 4
SLICE_BYTES = LOCAL_ROWS * COLS * 8


def jacobi_step(comm, local: np.ndarray) -> np.ndarray:
    """One halo-exchange + 4-point relaxation step."""
    upper = comm.sendrecv(
        local[0].copy(), dest=(comm.rank - 1) % comm.size,
        source=(comm.rank + 1) % comm.size, tag=7,
    )
    lower = comm.sendrecv(
        local[-1].copy(), dest=(comm.rank + 1) % comm.size,
        source=(comm.rank - 1) % comm.size, tag=8,
    )
    padded = np.vstack([lower[None, :], local, upper[None, :]])
    out = local.copy()
    out[:, 1:-1] = 0.25 * (
        padded[:-2, 1:-1] + padded[2:, 1:-1]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
    )
    return out


def solver(comm, strategy: str) -> dict:
    client = LustreClient(comm.world._cluster, comm.rank)
    if strategy == "lsmio":
        env = SimLustreEnv(client, stripe_count=4, stripe_size="64K")
        manager = LsmioManager(
            f"app.lsmio/rank{comm.rank}",
            options=LsmioOptions(),
            env=env,
        )
    else:
        if comm.rank == 0:
            client.create("app.ckpt", stripe_count=4, stripe_size="64K")
        comm.barrier()
        shared = client.cluster.lookup("app.ckpt")

    rng = np.random.default_rng(comm.rank)
    local = rng.standard_normal((LOCAL_ROWS, COLS))
    checkpoint_time = 0.0

    for step in range(1, STEPS + 1):
        local = jacobi_step(comm, local)
        if step % CHECKPOINT_EVERY == 0:
            comm.barrier()
            t0 = sim.now()
            payload = local.tobytes()
            if strategy == "lsmio":
                manager.put(f"step{step}/slice", payload)
                manager.write_barrier()
            else:
                client.write(shared, comm.rank * SLICE_BYTES, payload)
                client.fsync(shared)
            comm.barrier()
            checkpoint_time += sim.now() - t0

    checksum = float(np.abs(local).sum())
    if strategy == "lsmio":
        manager.close()
    return {"checkpoint_time": checkpoint_time, "checksum": checksum}


def run(strategy: str) -> tuple[float, float]:
    with sim.Engine() as engine:
        cluster = LustreCluster(engine, viking(client_jitter=0.8e-3))

        def setup(world):
            world._cluster = cluster

        results = run_world(
            RANKS, solver, strategy, engine=engine, world_setup=setup
        )
    times = [r["checkpoint_time"] for r in results]
    return max(times), results[0]["checksum"]


def main() -> int:
    total = RANKS * SLICE_BYTES * (STEPS // CHECKPOINT_EVERY)
    print(f"{RANKS}-rank Jacobi solver, {STEPS} steps, checkpoint every "
          f"{CHECKPOINT_EVERY} ({total >> 20} MiB of checkpoints total)\n")

    results = {}
    for strategy in ("posix", "lsmio"):
        elapsed, checksum = run(strategy)
        results[strategy] = elapsed
        per_ckpt = elapsed / (STEPS // CHECKPOINT_EVERY)
        print(f"{strategy:6s}: {elapsed * 1000:8.1f} ms simulated in "
              f"checkpoints ({per_ckpt * 1000:6.1f} ms each), "
              f"solver checksum {checksum:.3f}")

    speedup = results["posix"] / results["lsmio"]
    print(f"\nLSMIO checkpoints are {speedup:.1f}x faster — identical solver "
          "code, different I/O path")

    # What that buys a production machine (Young's formula; §2 economics):
    mtbf_s = 6 * 3600.0
    for strategy in ("posix", "lsmio"):
        delta = results[strategy] / (STEPS // CHECKPOINT_EVERY)
        interval = young_interval(delta, mtbf_s)
        eff = machine_efficiency(delta, interval, mtbf_s)
        print(f"  {strategy:6s}: optimal interval {interval:7.1f}s, "
              f"machine efficiency {eff * 100:.2f}% (6h MTBF)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
