#!/usr/bin/env python3
"""Quickstart: LSMIO as an embedded checkpoint store on the local disk.

Runs entirely on the local filesystem — no simulation involved.  Shows
the K/V API from Table 2: typed puts, append streams, the write barrier,
and read-back, with the paper's RocksDB customization (§3.1.1) applied by
default (WAL/compression/caching/compaction all off).

    python examples/quickstart.py [directory]
"""

import sys
import tempfile

import numpy as np

from repro.core import LsmioManager, LsmioOptions


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp()
    print(f"opening LSMIO store under {root}/quickstart-db")

    options = LsmioOptions()  # the paper's defaults: everything disabled
    manager = LsmioManager(f"{root}/quickstart-db", options)

    # -- typed K/V puts (Table 2: "multiple put methods") ---------------
    manager.put_typed("run/step", 42)
    manager.put_typed("run/time", 13.75)
    manager.put_typed("run/label", "demo checkpoint")
    field = np.linspace(0.0, 1.0, 1_000_000).reshape(1000, 1000)
    manager.put_typed("fields/temperature", field)

    # -- append streams (the LSMIO append op → LSM merge operands) ------
    for step in range(5):
        manager.append("log/events", f"step {step} done; ".encode())

    # -- the write barrier: flush the memtable as one sequential SSTable
    manager.write_barrier()

    # -- read everything back -------------------------------------------
    assert manager.get_typed("run/step") == 42
    assert manager.get_typed("run/time") == 13.75
    assert manager.get_typed("run/label") == "demo checkpoint"
    restored = manager.get_typed("fields/temperature")
    np.testing.assert_array_equal(restored, field)
    log = manager.get("log/events").decode()
    assert log.count("done") == 5

    print("wrote + read back:")
    print(f"  scalar metadata, a {field.nbytes >> 20} MiB float64 field,")
    print(f"  and an append-log of {len(log)} bytes")
    print("counters:", {
        k: v for k, v in manager.counters.snapshot().items()
        if isinstance(v, int) and v
    })
    bandwidth = manager.counters.write_bandwidth()
    print(f"effective write bandwidth (wall): {bandwidth / (1 << 20):.1f} MB/s")
    manager.close()

    # Reopen: the store is durable.
    manager2 = LsmioManager(f"{root}/quickstart-db", options)
    assert manager2.get_typed("run/step") == 42
    manager2.close()
    print("reopen OK — checkpoint survives process restart")
    return 0


if __name__ == "__main__":
    sys.exit(main())
